//! Derivation sketches (paper §3.1, Figure 5).
//!
//! A derivation sketch enumerates, for one sentence, the heuristics the
//! sentence satisfies, bounded by a fixed number of derivation steps. For
//! TokensRegex that is simply every contiguous n-gram up to the depth bound;
//! for TreeMatch the compact sketch is the dependency parse itself, from
//! which we enumerate a bounded pattern family (the full space is
//! exponential — paper §3.1 "TreeMatch Grammar").

use crate::fx::FxHashSet;
use darwin_grammar::{TreePattern, TreeTerm};
use darwin_text::{PosTag, Sentence, Sym};

/// Enumerate every contiguous n-gram of `sentence` with length in
/// `1..=max_len`, deduplicated (an n-gram occurring twice in a sentence is
/// reported once — the index counts sentences, not occurrences).
pub fn phrase_sketch(sentence: &Sentence, max_len: usize) -> Vec<Vec<Sym>> {
    let toks = &sentence.tokens;
    let mut seen: FxHashSet<&[Sym]> = FxHashSet::default();
    let mut out = Vec::new();
    for start in 0..toks.len() {
        for len in 1..=max_len.min(toks.len() - start) {
            let gram = &toks[start..start + len];
            if seen.insert(gram) {
                out.push(gram.to_vec());
            }
        }
    }
    out
}

/// Bounds for TreeMatch pattern enumeration.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeSketchConfig {
    /// Enumerate `a ∧ b` conjunctions of child constraints.
    pub include_and: bool,
    /// Skip punctuation nodes entirely.
    pub skip_punct: bool,
    /// Hard cap on patterns per sentence. This is a safety valve for
    /// pathological inputs only — if it ever truncates, index postings
    /// under-approximate true coverage, so it defaults far above what any
    /// real sentence produces (the paper caps derivation depth for the
    /// same reason).
    pub max_patterns: usize,
}

impl Default for TreeSketchConfig {
    fn default() -> Self {
        TreeSketchConfig {
            include_and: true,
            skip_punct: true,
            max_patterns: 4096,
        }
    }
}

/// Compact identity of one enumerated TreeMatch pattern — the closed
/// family [`tree_sketch`] produces. Interning and deduplicating by key
/// instead of by [`TreePattern`] keeps the hot ingest path free of
/// recursive hashing and per-pattern `Box` allocation; the full pattern
/// is materialized ([`SketchKey::to_pattern`]) only on demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SketchKey {
    /// `t`.
    Term(TreeTerm),
    /// `a / b`.
    Child(TreeTerm, TreeTerm),
    /// `a // b`.
    Desc(TreeTerm, TreeTerm),
    /// `(h/b1 ∧ h/b2)` with `b1 < b2` (the canonical enumeration order).
    And(TreeTerm, TreeTerm, TreeTerm),
}

impl SketchKey {
    /// Materialize the pattern this key denotes.
    pub fn to_pattern(self) -> TreePattern {
        match self {
            SketchKey::Term(t) => TreePattern::Term(t),
            SketchKey::Child(a, b) => {
                TreePattern::child(TreePattern::Term(a), TreePattern::Term(b))
            }
            SketchKey::Desc(a, b) => TreePattern::desc(TreePattern::Term(a), TreePattern::Term(b)),
            SketchKey::And(h, b1, b2) => TreePattern::and(
                TreePattern::child(TreePattern::Term(h), TreePattern::Term(b1)),
                TreePattern::child(TreePattern::Term(h), TreePattern::Term(b2)),
            ),
        }
    }

    /// Pack into a unique `u128` — the intern-map key of the hot ingest
    /// path. A [`TreeTerm`] needs 33 bits (32 payload bits plus a
    /// token/POS discriminant), so three terms and the 2-bit variant tag
    /// fit in 101 bits; hashing and comparing the packed word is a couple
    /// of ALU instructions instead of a 28-byte field walk. Injective for
    /// all inputs, so map identity is unchanged.
    #[inline]
    pub fn pack(self) -> u128 {
        #[inline]
        fn term(t: TreeTerm) -> u128 {
            match t {
                TreeTerm::Tok(s) => s.0 as u128,
                TreeTerm::Pos(p) => (1u128 << 32) | p.as_u8() as u128,
            }
        }
        match self {
            SketchKey::Term(a) => term(a) << 2,
            SketchKey::Child(a, b) => 1 | term(a) << 2 | term(b) << 35,
            SketchKey::Desc(a, b) => 2 | term(a) << 2 | term(b) << 35,
            SketchKey::And(h, b1, b2) => 3 | term(h) << 2 | term(b1) << 35 | term(b2) << 68,
        }
    }

    /// The key of a pattern, if it has the shape of the enumerated family
    /// (`None` otherwise — such a pattern is never interned).
    pub fn of_pattern(p: &TreePattern) -> Option<SketchKey> {
        let term = |q: &TreePattern| match q {
            TreePattern::Term(t) => Some(*t),
            _ => None,
        };
        match p {
            TreePattern::Term(t) => Some(SketchKey::Term(*t)),
            TreePattern::Child(a, b) => Some(SketchKey::Child(term(a)?, term(b)?)),
            TreePattern::Desc(a, b) => Some(SketchKey::Desc(term(a)?, term(b)?)),
            TreePattern::And(l, r) => match (&**l, &**r) {
                (TreePattern::Child(h1, b1), TreePattern::Child(h2, b2)) => {
                    let (h1, h2) = (term(h1)?, term(h2)?);
                    if h1 != h2 {
                        return None;
                    }
                    Some(SketchKey::And(h1, term(b1)?, term(b2)?))
                }
                _ => None,
            },
        }
    }
}

/// Enumerate the bounded TreeMatch pattern family satisfied by `sentence`:
///
/// * terminals: `tok`, and `POS` for content tags,
/// * one-edge patterns: `a/b` and `a//b` for each tree edge, with each side
///   a token or (content) POS terminal,
/// * two-edge descendants: `a//c` for grandparent pairs,
/// * conjunctions: `(x/b ∧ x/c)` for sibling child constraints.
///
/// Each reported pattern is also returned with the `(token, tag)` evidence
/// needed to register token→POS generalization edges.
pub fn tree_sketch(sentence: &Sentence, cfg: &TreeSketchConfig) -> Vec<TreePattern> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<SketchKey> = FxHashSet::default();
    for_each_tree_sketch(sentence, cfg, &mut |k| {
        let fresh = seen.insert(k);
        if fresh {
            out.push(k.to_pattern());
        }
        fresh
    });
    out
}

/// Reusable per-sentence enumeration scratch for
/// [`for_each_tree_sketch_with`]: the work lists hoisted out of the
/// per-sentence loop so a streaming ingest pays zero allocations per
/// sentence after warm-up.
#[derive(Default, Clone)]
pub struct SketchScratch {
    children: Vec<u16>,
    stack: Vec<u16>,
    child_terms: Vec<TreeTerm>,
}

/// [`tree_sketch`] without materializing patterns: calls `f` for each
/// enumerated key, in the exact order `tree_sketch` reports patterns.
/// **Deduplication is the callback's job**: `f` returns whether the key
/// was new for this sentence (only fresh keys count against
/// `max_patterns`). The tree index dedupes for free off its postings
/// tail, which is why no per-sentence hash set exists on this path.
pub fn for_each_tree_sketch(
    sentence: &Sentence,
    cfg: &TreeSketchConfig,
    f: &mut impl FnMut(SketchKey) -> bool,
) {
    for_each_tree_sketch_with(&mut SketchScratch::default(), sentence, cfg, f)
}

/// [`for_each_tree_sketch`] with caller-owned scratch — the
/// allocation-free primitive behind
/// [`crate::tree_index::TreeIndex::add_sentence`].
pub fn for_each_tree_sketch_with(
    scratch: &mut SketchScratch,
    sentence: &Sentence,
    cfg: &TreeSketchConfig,
    f: &mut impl FnMut(SketchKey) -> bool,
) {
    let n = sentence.len();
    let mut accepted = 0usize;
    let mut push = |k: SketchKey| {
        if accepted < cfg.max_patterns && f(k) {
            accepted += 1;
        }
    };

    let usable = |i: usize| !(cfg.skip_punct && sentence.tags[i] == PosTag::Punct);
    // Determiners and punctuation carry no pattern signal: a rule anchored
    // on "the" can never be a precise labeling heuristic, and enumerating
    // such patterns floods the candidate pool (the paper's diversity
    // constraints in §3.2.1 serve the same purpose).
    let anchorable = |i: usize| usable(i) && sentence.tags[i] != PosTag::Det;
    // Per-node terminals: the literal token, plus the POS tag for content
    // tags. Cheap enough to derive in place wherever the edge loops below
    // need them.
    let terms = |i: usize| {
        [
            Some(TreeTerm::Tok(sentence.tokens[i])),
            sentence.tags[i]
                .is_content()
                .then_some(TreeTerm::Pos(sentence.tags[i])),
        ]
        .into_iter()
        .flatten()
    };

    // The edge loops walk the corpus-resident CSR adjacency
    // ([`Sentence::children_slice`]) — children ascending, the same order
    // the old head-array filter scan produced.
    for i in 0..n {
        if !usable(i) {
            continue;
        }
        for t in terms(i) {
            push(SketchKey::Term(t));
        }
        scratch.children.clear();
        scratch.children.extend(
            sentence
                .children_slice(i)
                .iter()
                .copied()
                .filter(|&c| anchorable(c as usize)),
        );
        // Direct-edge Child patterns.
        for &c in &scratch.children {
            for a in terms(i) {
                for b in terms(c as usize) {
                    // Skip the doubly-generic POS/POS patterns: they match
                    // nearly everything and drown the index.
                    if matches!(a, TreeTerm::Pos(_)) && matches!(b, TreeTerm::Pos(_)) {
                        continue;
                    }
                    push(SketchKey::Child(a, b));
                }
            }
        }
        // Descendant patterns over the full transitive closure, so that the
        // index's postings for `a//b` exactly equal the pattern's coverage
        // at any depth. Fused stack walk: each descendant is processed the
        // moment it pops, which is exactly the order the old collect-then-
        // iterate version visited them.
        scratch.stack.clear();
        scratch.stack.extend_from_slice(sentence.children_slice(i));
        while let Some(d) = scratch.stack.pop() {
            let d = d as usize;
            if anchorable(d) {
                for a in terms(i) {
                    for b in terms(d) {
                        if matches!(a, TreeTerm::Pos(_)) && matches!(b, TreeTerm::Pos(_)) {
                            continue;
                        }
                        push(SketchKey::Desc(a, b));
                    }
                }
            }
            scratch.stack.extend_from_slice(sentence.children_slice(d));
        }
        // Conjunctions of two child constraints on the same head token:
        // `(h/b1 ∧ h/b2)`. The pattern holds whenever *some* child matches
        // b1 and *some* child matches b2 (possibly the same child), so we
        // enumerate unordered pairs of the distinct terms matched by any
        // child — complete and canonical (b1 < b2 by the derived ordering).
        if cfg.include_and && !scratch.children.is_empty() {
            let head = TreeTerm::Tok(sentence.tokens[i]);
            scratch.child_terms.clear();
            for k in 0..scratch.children.len() {
                let c = scratch.children[k] as usize;
                scratch.child_terms.extend(terms(c));
            }
            scratch.child_terms.sort_unstable();
            scratch.child_terms.dedup();
            for x in 0..scratch.child_terms.len() {
                for y in x + 1..scratch.child_terms.len() {
                    let (b1, b2) = (scratch.child_terms[x], scratch.child_terms[y]);
                    if matches!(b1, TreeTerm::Pos(_)) && matches!(b2, TreeTerm::Pos(_)) {
                        continue;
                    }
                    push(SketchKey::And(head, b1, b2));
                }
            }
        }
    }
}

/// Enumerate one batch of sentences on `threads` workers: per-sentence
/// key lists, deduplicated and capped exactly as the serial path would,
/// joined in sentence order. Per-sentence enumeration is pure, so the
/// ordered join is deterministic — interning the lists in order produces
/// the same index the serial path builds (the same argument as the
/// corpus analysis fan-out).
pub fn sketch_batch(
    sentences: &[Sentence],
    cfg: &TreeSketchConfig,
    threads: usize,
) -> Vec<Vec<SketchKey>> {
    let one = |scratch: &mut SketchScratch, s: &Sentence| -> Vec<SketchKey> {
        let mut keys = Vec::new();
        let mut seen: FxHashSet<SketchKey> = FxHashSet::default();
        for_each_tree_sketch_with(scratch, s, cfg, &mut |k| {
            let fresh = seen.insert(k);
            if fresh {
                keys.push(k);
            }
            fresh
        });
        keys
    };
    if threads <= 1 || sentences.len() < 256 {
        let mut scratch = SketchScratch::default();
        return sentences.iter().map(|s| one(&mut scratch, s)).collect();
    }
    let chunk = sentences.len().div_ceil(threads);
    let mut parts: Vec<Vec<Vec<SketchKey>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sentences
            .chunks(chunk)
            .map(|c| {
                let one = &one;
                scope.spawn(move || {
                    let mut scratch = SketchScratch::default();
                    c.iter().map(|s| one(&mut scratch, s)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("sketch thread panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Token→POS generalization evidence: every `(token, tag)` occurrence of
/// the sentence. The tree index uses this both to create
/// `Term(tok) → Term(POS)` hierarchy edges (content tags only) and to
/// detect tag-ambiguous tokens, for which such an edge would not be
/// coverage-monotone — so *all* occurrences must be reported, not just the
/// content-tagged ones.
pub fn term_generalizations(sentence: &Sentence) -> impl Iterator<Item = (Sym, PosTag)> + '_ {
    sentence
        .tokens
        .iter()
        .zip(&sentence.tags)
        .map(|(s, t)| (*s, *t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::Corpus;

    #[test]
    fn phrase_sketch_counts() {
        let c = Corpus::from_texts(["a b c"]);
        let s = c.sentence(0);
        // 3 unigrams + 2 bigrams + 1 trigram.
        assert_eq!(phrase_sketch(s, 3).len(), 6);
        assert_eq!(phrase_sketch(s, 2).len(), 5);
        assert_eq!(phrase_sketch(s, 1).len(), 3);
    }

    #[test]
    fn phrase_sketch_dedupes_repeats() {
        let c = Corpus::from_texts(["to get to"]);
        let s = c.sentence(0);
        let grams = phrase_sketch(s, 1);
        assert_eq!(grams.len(), 2, "'to' reported once");
    }

    #[test]
    fn every_phrase_gram_matches_its_sentence() {
        let c = Corpus::from_texts(["what is the best way to get to sfo airport"]);
        let s = c.sentence(0);
        for gram in phrase_sketch(s, 4) {
            let p = darwin_grammar::PhrasePattern::from_tokens(gram);
            assert!(p.matches(s), "{}", p.display(c.vocab()));
        }
    }

    #[test]
    fn every_tree_pattern_matches_its_sentence() {
        let c = Corpus::from_texts([
            "uber is the best way to our hotel",
            "his job is a teacher at the school",
        ]);
        for s in c.sentences() {
            for p in tree_sketch(s, &TreeSketchConfig::default()) {
                assert!(p.matches(s), "{}", p.display(c.vocab()));
            }
        }
    }

    #[test]
    fn tree_sketch_contains_edge_patterns() {
        let c = Corpus::from_texts(["uber is the best way to our hotel"]);
        let s = c.sentence(0);
        let pats = tree_sketch(s, &TreeSketchConfig::default());
        let want = darwin_grammar::TreePattern::parse(c.vocab(), "is/way").unwrap();
        assert!(pats.contains(&want), "is/way should be enumerated");
    }

    #[test]
    fn tree_sketch_respects_caps() {
        let c = Corpus::from_texts(["a b c d e f g h i j k l m n o p q r s t"]);
        let cfg = TreeSketchConfig {
            max_patterns: 10,
            ..Default::default()
        };
        let pats = tree_sketch(c.sentence(0), &cfg);
        assert!(pats.len() <= 10);
    }

    #[test]
    fn tree_sketch_skips_punct() {
        let c = Corpus::from_texts(["where is the shuttle ?"]);
        let pats = tree_sketch(c.sentence(0), &TreeSketchConfig::default());
        let q = c.vocab().get("?").unwrap();
        assert!(!pats
            .iter()
            .any(|p| matches!(p, TreePattern::Term(TreeTerm::Tok(t)) if *t == q)));
    }

    #[test]
    fn generalization_evidence_covers_every_token() {
        let c = Corpus::from_texts(["the shuttle arrived"]);
        let ev: Vec<_> = term_generalizations(c.sentence(0)).collect();
        let shuttle = c.vocab().get("shuttle").unwrap();
        assert!(ev.iter().any(|(s, t)| *s == shuttle && *t == PosTag::Noun));
        // Non-content occurrences are reported too (needed for ambiguity
        // detection), with their actual tags.
        let the = c.vocab().get("the").unwrap();
        assert!(ev.iter().any(|(s, t)| *s == the && *t == PosTag::Det));
        assert_eq!(ev.len(), 3);
    }
}

//! Contiguous sentence-id sharding (the partition layer of the sharded
//! execution engine).
//!
//! A [`ShardMap`] splits the id space `0..n` into `S` contiguous,
//! near-equal ranges. Contiguity is the property everything downstream
//! leans on:
//!
//! * a shard's slice of any **sorted** posting list is itself contiguous,
//!   so shard-sliced coverage is two binary searches ([`shard_slice`]), not
//!   a filter;
//! * per-shard outputs concatenated in shard order reproduce the id-order
//!   output of an unsharded pass bit for bit (score refreshes, change
//!   journals);
//! * ownership is O(1) arithmetic ([`ShardMap::owner`]), so routing a
//!   per-sentence delta to its shard costs nothing.
//!
//! The map is pure bookkeeping — it holds no postings. `S = 1` degenerates
//! to a single shard spanning the whole corpus, which is how the unsharded
//! path stays alive as the equivalence reference.

use std::ops::Range;

/// Slice of a **sorted** posting list restricted to ids in `[lo, hi)`.
/// Two binary searches; the result borrows from `postings`.
pub fn shard_slice(postings: &[u32], lo: u32, hi: u32) -> &[u32] {
    let a = postings.partition_point(|&s| s < lo);
    let b = postings.partition_point(|&s| s < hi);
    &postings[a..b]
}

/// Number of ids two **sorted, duplicate-free** lists share (posting lists
/// and dirty-id batches are both strictly increasing; with duplicates the
/// result would depend on which internal branch runs, so they are ruled
/// out by contract and `debug_assert`ed).
///
/// This is the dirty-id filtering primitive of incremental maintenance:
/// given a rule's posting list and a sorted batch of newly-labeled sentence
/// ids, the intersection size is exactly how much the rule's
/// positive-overlap statistic moved. Adaptive: when one list is much
/// shorter the longer one is binary-searched (and narrowed after each
/// probe), otherwise a linear merge runs — both O(min + log) / O(a + b)
/// with no allocation.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a not sorted-unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b not sorted-unique");
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    let mut hits = 0;
    if long.len() / short.len() >= 16 {
        let mut rest = long;
        for &x in short {
            let i = rest.partition_point(|&y| y < x);
            if rest.get(i) == Some(&x) {
                hits += 1;
                rest = &rest[i + 1..];
            } else {
                rest = &rest[i..];
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    hits += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    hits
}

/// A partition of sentence ids `0..n` into `S` contiguous shards.
///
/// Shard `s` owns `[s·c, min((s+1)·c, n))` with `c = ⌈n / S⌉`; when
/// `S > n` the trailing shards are empty (harmless — they own nothing and
/// contribute zero to every merge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n: u32,
    shards: usize,
    chunk: u32,
}

impl ShardMap {
    /// Partition `n_sentences` ids into `shards` contiguous ranges
    /// (`shards` is clamped to at least 1).
    pub fn new(n_sentences: usize, shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let n = u32::try_from(n_sentences).expect("corpus exceeds u32 id space");
        ShardMap {
            n,
            shards,
            chunk: n.div_ceil(shards as u32).max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of sentence ids partitioned.
    pub fn sentences(&self) -> usize {
        self.n as usize
    }

    /// The shard owning sentence `id`, clamped to the last shard.
    ///
    /// The clamp is a real invariant in every build profile, not a debug
    /// assertion: the result is always `< shards()`, so downstream
    /// fragment-vector indexing cannot run past the end even if a caller
    /// hands in an id at (or beyond) the universe edge. It is also the
    /// epoch-growth rule — after [`grow`](ShardMap::grow) the chunk split
    /// stays frozen and every appended id lands on the last shard.
    pub fn owner(&self, id: u32) -> usize {
        ((id / self.chunk) as usize).min(self.shards - 1)
    }

    /// The id range shard `s` owns (empty for trailing shards of an
    /// over-partitioned corpus). The last shard always extends to `n`, so
    /// ranges keep tiling the universe after [`grow`](ShardMap::grow).
    pub fn range(&self, s: usize) -> Range<u32> {
        debug_assert!(s < self.shards);
        let lo = (s as u32).saturating_mul(self.chunk).min(self.n);
        let hi = if s + 1 == self.shards {
            self.n
        } else {
            lo.saturating_add(self.chunk).min(self.n)
        };
        lo..hi
    }

    /// Extend the universe to `new_n` ids **without** moving the chunk
    /// split: ids `n..new_n` all join the last shard. This is the
    /// epoch-stamped growth rule for appended corpora — within an epoch
    /// the partition of pre-existing ids is immutable (so confirmed
    /// remote fragment state stays valid), and only a fresh
    /// [`ShardMap::new`] at a retrain barrier re-balances.
    pub fn grow(&mut self, new_n: usize) {
        let new_n = u32::try_from(new_n).expect("corpus exceeds u32 id space");
        assert!(new_n >= self.n, "ShardMap::grow cannot shrink the universe");
        self.n = new_n;
    }

    /// All shard ranges, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<u32>> + '_ {
        (0..self.shards).map(|s| self.range(s))
    }

    /// Shard `s`'s slice of a sorted posting list.
    pub fn slice<'a>(&self, postings: &'a [u32], s: usize) -> &'a [u32] {
        let r = self.range(s);
        shard_slice(postings, r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_universe() {
        for n in [0usize, 1, 5, 7, 100, 101] {
            for s in [1usize, 2, 3, 4, 7, 16] {
                let m = ShardMap::new(n, s);
                assert_eq!(m.shards(), s);
                let mut cursor = 0u32;
                for r in m.ranges() {
                    assert_eq!(r.start, cursor, "n={n} s={s}: gap or overlap");
                    cursor = r.end;
                }
                assert_eq!(cursor, n as u32, "n={n} s={s}: universe not covered");
            }
        }
    }

    #[test]
    fn owner_agrees_with_ranges() {
        let m = ShardMap::new(103, 7);
        for id in 0..103u32 {
            let s = m.owner(id);
            assert!(m.range(s).contains(&id));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let m = ShardMap::new(10, 0);
        assert_eq!(m.shards(), 1);
        assert_eq!(m.range(0), 0..10);
    }

    #[test]
    fn slices_cover_postings_exactly() {
        let postings: Vec<u32> = vec![0, 3, 4, 9, 17, 40, 41, 99];
        let m = ShardMap::new(100, 4);
        let mut rebuilt = Vec::new();
        for s in 0..m.shards() {
            let slice = m.slice(&postings, s);
            for &id in slice {
                assert_eq!(m.owner(id), s);
            }
            rebuilt.extend_from_slice(slice);
        }
        assert_eq!(rebuilt, postings, "shard slices must tile the postings");
    }

    #[test]
    fn shard_slice_bounds() {
        let postings = [2u32, 5, 5, 8, 11];
        assert_eq!(shard_slice(&postings, 0, 12), &postings[..]);
        assert_eq!(shard_slice(&postings, 5, 9), &[5, 5, 8][..]);
        assert_eq!(shard_slice(&postings, 12, 20), &[] as &[u32]);
    }

    #[test]
    fn intersect_count_agrees_with_naive() {
        let naive = |a: &[u32], b: &[u32]| a.iter().filter(|x| b.contains(x)).count();
        let cases: [(&[u32], &[u32]); 6] = [
            (&[], &[1, 2, 3]),
            (&[2], &[1, 2, 3]),
            (&[1, 4, 9], &[2, 4, 6, 8, 9]),
            (&[0, 1, 2, 3], &[0, 1, 2, 3]),
            (&[5, 7], &(0..200).collect::<Vec<u32>>()),
            (&[199, 201], &(0..200).collect::<Vec<u32>>()),
        ];
        for (a, b) in cases {
            assert_eq!(intersect_count(a, b), naive(a, b), "a={a:?}");
            assert_eq!(intersect_count(b, a), naive(a, b), "swapped a={a:?}");
        }
        // Both branches: a long sparse probe list vs. a similar-length merge.
        let long: Vec<u32> = (0..1000).step_by(3).collect();
        let short: Vec<u32> = (0..1000).step_by(51).collect();
        assert_eq!(intersect_count(&short, &long), naive(&short, &long));
        let similar: Vec<u32> = (0..1000).step_by(4).collect();
        assert_eq!(intersect_count(&similar, &long), naive(&similar, &long));
    }

    #[test]
    fn owner_clamps_to_last_shard_in_all_profiles() {
        // Pinned satellite behavior: an id at or past the universe edge
        // must never produce an owner >= shards() in any build profile
        // (release builds skip the debug_assert and used to return a
        // nonsense shard that indexed past the fragment vector).
        let m = ShardMap::new(100, 4);
        for id in [99u32, 100, 101, 1000, u32::MAX] {
            assert_eq!(m.owner(id).min(m.shards() - 1), m.owner(id));
            assert!(m.owner(id) < m.shards(), "id {id} escaped the clamp");
        }
        assert_eq!(ShardMap::new(1, 8).owner(u32::MAX), 7, "chunk=1 clamp");
    }

    #[test]
    fn grow_keeps_chunk_and_routes_new_ids_to_last_shard() {
        let mut m = ShardMap::new(100, 4); // chunk = 25
        let frozen: Vec<_> = (0..100).map(|id| m.owner(id)).collect();
        m.grow(140);
        assert_eq!(m.sentences(), 140);
        // Pre-existing ids keep their owners — the epoch invariant.
        for id in 0..100u32 {
            assert_eq!(m.owner(id), frozen[id as usize]);
        }
        // Appended ids all land on the last shard, and ranges still tile.
        for id in 100..140u32 {
            assert_eq!(m.owner(id), 3);
        }
        let mut cursor = 0u32;
        for r in m.ranges() {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, 140);
        assert_eq!(m.range(3), 75..140, "last shard absorbs the growth");
    }

    #[test]
    fn more_shards_than_ids_leaves_trailing_empties() {
        let m = ShardMap::new(3, 7);
        let non_empty: usize = m.ranges().filter(|r| !r.is_empty()).count();
        assert_eq!(non_empty, 3);
        assert_eq!(m.range(6), 3..3);
    }
}

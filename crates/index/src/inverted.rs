//! Sentence → covering-rules inverted postings.
//!
//! The forward index answers "which sentences does rule `r` cover?"
//! ([`crate::IndexSet::coverage`]). The incremental benefit engine needs the
//! transpose: "which rules cover sentence `s`?" — when the positive set `P`
//! gains a handful of sentence ids, or the classifier re-scores a few
//! sentences, only the rules covering those ids change benefit, and the
//! engine patches exactly those aggregates instead of rescanning every
//! rule's coverage (the same delta principle as incremental view
//! maintenance under updates).
//!
//! Stored as CSR: one contiguous `RuleRef` arena plus per-sentence offsets.
//! Within a sentence's slice, rules appear in [`crate::IndexSet::all_rules`]
//! order (phrases in node order, then tree patterns), which makes every
//! delta walk deterministic.

use crate::api::{IndexSet, RuleRef};

/// Transposed coverage: for each sentence id, the rules whose coverage
/// contains it.
pub struct InvertedIndex {
    offsets: Vec<usize>,
    rules: Vec<RuleRef>,
}

impl InvertedIndex {
    /// Transpose the forward postings of `index` (the root is excluded — it
    /// covers everything and carries no benefit signal).
    pub fn build(index: &IndexSet) -> InvertedIndex {
        let n = index.sentences();
        // Offsets are usize: the corpus-wide sum of coverages can pass u32
        // range long before any single posting list does.
        let mut counts = vec![0usize; n];
        for r in index.all_rules() {
            for &s in index.coverage(r) {
                counts[s as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut rules = vec![RuleRef::Root; acc];
        for r in index.all_rules() {
            for &s in index.coverage(r) {
                let slot = &mut cursor[s as usize];
                rules[*slot] = r;
                *slot += 1;
            }
        }
        InvertedIndex { offsets, rules }
    }

    /// Extend the transpose for sentences appended after it was built:
    /// `index` has grown to cover ids `old_n..index.sentences()` and this
    /// transpose still ends at `old_n`.
    ///
    /// Only *new* rows are written. That is sound because the caller
    /// (`IndexSet::append`) guarantees an unpruned index (`min_count == 1`),
    /// where a rule first materialized by an appended sentence can cover
    /// only appended sentences — any earlier occurrence would already have
    /// interned it — so no pre-existing row gains or loses a rule and the
    /// result is bit-identical to a scratch [`InvertedIndex::build`] on the
    /// grown index. Each rule's new postings are the tail of its sorted
    /// posting list (`>= old_n`), found by one binary search.
    pub fn extend_for_append(&mut self, index: &IndexSet, old_n: usize) {
        debug_assert_eq!(self.sentences(), old_n, "transpose not at old_n");
        let new_n = index.sentences();
        if new_n == old_n {
            return;
        }
        let mut counts = vec![0usize; new_n - old_n];
        for r in index.all_rules() {
            let cov = index.coverage(r);
            let tail = cov.partition_point(|&s| (s as usize) < old_n);
            for &s in &cov[tail..] {
                counts[s as usize - old_n] += 1;
            }
        }
        let mut acc = *self.offsets.last().expect("offsets never empty");
        let mut cursor = Vec::with_capacity(counts.len());
        for &c in &counts {
            cursor.push(acc);
            acc += c;
            self.offsets.push(acc);
        }
        self.rules.resize(acc, RuleRef::Root);
        for r in index.all_rules() {
            let cov = index.coverage(r);
            let tail = cov.partition_point(|&s| (s as usize) < old_n);
            for &s in &cov[tail..] {
                let slot = &mut cursor[s as usize - old_n];
                self.rules[*slot] = r;
                *slot += 1;
            }
        }
    }

    /// Rules covering sentence `id`, in [`IndexSet::all_rules`] order.
    pub fn rules_covering(&self, id: u32) -> &[RuleRef] {
        let lo = self.offsets[id as usize];
        let hi = self.offsets[id as usize + 1];
        &self.rules[lo..hi]
    }

    /// Number of sentences the transpose covers.
    pub fn sentences(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total postings across all sentences (== total forward postings).
    pub fn postings_len(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IndexConfig;
    use darwin_text::Corpus;

    fn setup() -> (Corpus, IndexSet) {
        let c = Corpus::from_texts([
            "the shuttle to the airport leaves hourly",
            "is there a shuttle to the airport tonight",
            "a bus to the airport runs daily",
            "order pizza to the room please",
        ]);
        let idx = IndexSet::build(&c, &IndexConfig::small());
        (c, idx)
    }

    #[test]
    fn transpose_agrees_with_forward_postings() {
        let (c, idx) = setup();
        let inv = InvertedIndex::build(&idx);
        assert_eq!(inv.sentences(), c.len());
        // Every forward posting appears in the transpose...
        for r in idx.all_rules() {
            for &s in idx.coverage(r) {
                assert!(
                    inv.rules_covering(s).contains(&r),
                    "rule {:?} covers {s} but transpose misses it",
                    r
                );
            }
        }
        // ...and the transpose contains nothing extra.
        let forward_total: usize = idx.all_rules().map(|r| idx.coverage(r).len()).sum();
        assert_eq!(inv.postings_len(), forward_total);
    }

    #[test]
    fn per_sentence_rules_are_unique_and_cover() {
        let (c, idx) = setup();
        let inv = InvertedIndex::build(&idx);
        for s in 0..c.len() as u32 {
            let rules = inv.rules_covering(s);
            let mut seen = crate::fx::FxHashSet::default();
            for &r in rules {
                assert!(seen.insert(r), "duplicate rule {r:?} for sentence {s}");
                assert!(idx.coverage(r).contains(&s));
            }
        }
    }

    #[test]
    fn root_is_excluded() {
        let (_, idx) = setup();
        let inv = InvertedIndex::build(&idx);
        for s in 0..inv.sentences() as u32 {
            assert!(!inv.rules_covering(s).contains(&RuleRef::Root));
        }
    }
}

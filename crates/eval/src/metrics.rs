//! Classification and coverage metrics.

/// Precision, recall and F1 bundle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionRecallF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Metrics for boolean predictions against ground truth.
pub fn precision_recall_f1(predicted: &[bool], truth: &[bool]) -> PrecisionRecallF1 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fne = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        0.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecallF1 {
        precision,
        recall,
        f1,
    }
}

/// F1 of probabilistic scores at a threshold.
pub fn f1_score(scores: &[f32], truth: &[bool], threshold: f32) -> f64 {
    let predicted: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
    precision_recall_f1(&predicted, truth).f1
}

/// Rule coverage (the paper's headline metric): the fraction of all
/// positive instances contained in the discovered positive set `p`.
pub fn coverage(p: &[u32], truth: &[bool]) -> f64 {
    let total = truth.iter().filter(|&&t| t).count();
    if total == 0 {
        return 0.0;
    }
    let found = p.iter().filter(|&&i| truth[i as usize]).count();
    found as f64 / total as f64
}

/// Precision of a discovered positive set.
pub fn set_precision(p: &[u32], truth: &[bool]) -> f64 {
    if p.is_empty() {
        return 0.0;
    }
    p.iter().filter(|&&i| truth[i as usize]).count() as f64 / p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = vec![true, false, true, false];
        let m = precision_recall_f1(&t, &t);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn partial_predictions() {
        let truth = vec![true, true, false, false];
        let pred = vec![true, false, true, false];
        let m = precision_recall_f1(&pred, &truth);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.recall - 0.5).abs() < 1e-9);
        assert!((m.f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        let m = precision_recall_f1(&[false, false], &[true, true]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        let m2 = precision_recall_f1(&[], &[]);
        assert_eq!(m2.f1, 0.0);
    }

    #[test]
    fn f1_threshold_sweep() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let truth = vec![true, true, false, false];
        assert_eq!(f1_score(&scores, &truth, 0.5), 1.0);
        assert!(f1_score(&scores, &truth, 0.85) < 1.0);
    }

    #[test]
    fn coverage_fraction() {
        let truth = vec![true, true, true, false, true];
        assert_eq!(coverage(&[0, 1], &truth), 0.5);
        assert_eq!(coverage(&[0, 1, 2, 4], &truth), 1.0);
        assert_eq!(coverage(&[3], &truth), 0.0);
        assert_eq!(coverage(&[], &truth), 0.0);
        assert_eq!(coverage(&[0], &[false, false]), 0.0, "no positives at all");
    }

    #[test]
    fn set_precision_counts() {
        let truth = vec![true, false, true];
        assert_eq!(set_precision(&[0, 1], &truth), 0.5);
        assert_eq!(set_precision(&[], &truth), 0.0);
    }
}

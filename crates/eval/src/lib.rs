//! Metrics, curves and report rendering for the Darwin experiments (§4).
//!
//! * [`metrics`] — precision / recall / F1 / rule coverage,
//! * [`curves`] — per-question series with grid resampling and multi-seed
//!   averaging (the x-axes of Figures 7–10, 12–13),
//! * [`report`] — ASCII tables for stdout plus CSV emission under
//!   `target/experiments/` so every table and figure is regenerable and
//!   archivable.

pub mod curves;
pub mod metrics;
pub mod report;

pub use curves::Curve;
pub use metrics::{coverage, f1_score, precision_recall_f1, PrecisionRecallF1};
pub use report::{csv_path, fmt_ns, write_csv, Table};

//! ASCII tables and CSV emission.

use crate::curves::Curve;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple left-aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Write as CSV next to the other experiment outputs.
    pub fn to_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Render a nanosecond duration with a human-scale unit (`"741 ns"`,
/// `"12.3 µs"`, `"3.83 s"`), three significant digits — what the bench
/// drivers print wall-clock comparisons with.
pub fn fmt_ns(ns: u128) -> String {
    const UNITS: [(u128, &str); 3] = [(1_000_000_000, "s"), (1_000_000, "ms"), (1_000, "µs")];
    for (scale, unit) in UNITS {
        let v = ns as f64 / scale as f64;
        // Pick the unit the *rounded* value fits in: 999_950 ns rounds to
        // 1.00 ms, not "1000 µs" — never four digits.
        if v >= 0.9995 {
            return if v >= 99.95 {
                format!("{v:.0} {unit}")
            } else if v >= 9.995 {
                format!("{v:.1} {unit}")
            } else {
                format!("{v:.2} {unit}")
            };
        }
    }
    format!("{ns} ns")
}

/// Canonical output path for an experiment artifact:
/// `target/experiments/<name>.csv` relative to the workspace root (or the
/// current directory when run elsewhere).
pub fn csv_path(name: &str) -> PathBuf {
    let base = std::env::var_os("DARWIN_EXPERIMENT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"));
    base.join(format!("{name}.csv"))
}

/// Write a set of curves as long-format CSV (`label,x,y`).
pub fn write_csv(name: &str, curves: &[Curve]) -> std::io::Result<PathBuf> {
    let path = csv_path(name);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(&path)?;
    writeln!(f, "label,x,y")?;
    for c in curves {
        for (&x, &y) in c.xs.iter().zip(&c.ys) {
            writeln!(f, "{},{},{}", c.label, x, y)?;
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha  1"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn fmt_ns_picks_human_units() {
        assert_eq!(fmt_ns(741), "741 ns");
        assert_eq!(fmt_ns(12_300), "12.3 µs");
        assert_eq!(fmt_ns(5_250_000), "5.25 ms");
        assert_eq!(fmt_ns(879_184_991), "879 ms");
        assert_eq!(fmt_ns(3_830_000_000), "3.83 s");
        // Unit boundaries round *up* a unit, never to four digits.
        assert_eq!(fmt_ns(999_950), "1.00 ms");
        assert_eq!(fmt_ns(999_950_000), "1.00 s");
        assert_eq!(fmt_ns(99_960), "100 µs");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("darwin_eval_test");
        let _ = fs::remove_dir_all(&dir);
        std::env::set_var("DARWIN_EXPERIMENT_DIR", &dir);
        let mut c = Curve::new("line");
        c.push(1, 0.5);
        c.push(2, 0.75);
        let path = write_csv("unit_test_curve", &[c]).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("label,x,y"));
        assert!(content.contains("line,2,0.75"));
        std::env::remove_var("DARWIN_EXPERIMENT_DIR");
    }

    #[test]
    fn table_csv() {
        let dir = std::env::temp_dir().join("darwin_eval_test_tbl");
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let p = dir.join("t.csv");
        t.to_csv(&p).unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "a,b\n1,2\n");
    }
}

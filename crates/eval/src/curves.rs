//! Per-question measurement series.

/// A measurement curve: y-values sampled at integer x-positions (question
/// counts, seed-set sizes, epochs, …).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Curve {
    pub label: String,
    pub xs: Vec<usize>,
    pub ys: Vec<f64>,
}

impl Curve {
    pub fn new(label: impl Into<String>) -> Curve {
        Curve {
            label: label.into(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    pub fn push(&mut self, x: usize, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Step-function value at `x` (the last y with `xs ≤ x`), or `default`
    /// before the first sample. Curves are assumed x-sorted.
    pub fn value_at(&self, x: usize, default: f64) -> f64 {
        let mut v = default;
        for (&cx, &cy) in self.xs.iter().zip(&self.ys) {
            if cx > x {
                break;
            }
            v = cy;
        }
        v
    }

    /// Resample onto an x-grid as a step function.
    pub fn resample(&self, grid: &[usize], default: f64) -> Curve {
        let mut out = Curve::new(self.label.clone());
        for &x in grid {
            out.push(x, self.value_at(x, default));
        }
        out
    }

    /// Pointwise mean of several curves over a common grid.
    pub fn mean(label: impl Into<String>, curves: &[Curve], grid: &[usize], default: f64) -> Curve {
        let mut out = Curve::new(label);
        if curves.is_empty() {
            return out;
        }
        for &x in grid {
            let sum: f64 = curves.iter().map(|c| c.value_at(x, default)).sum();
            out.push(x, sum / curves.len() as f64);
        }
        out
    }

    /// Final y value (0.0 for empty curves).
    pub fn last(&self) -> f64 {
        self.ys.last().copied().unwrap_or(0.0)
    }

    /// Smallest x at which the curve reaches `target`, if ever.
    pub fn first_reaching(&self, target: f64) -> Option<usize> {
        self.xs
            .iter()
            .zip(&self.ys)
            .find(|(_, &y)| y >= target)
            .map(|(&x, _)| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(points: &[(usize, f64)]) -> Curve {
        let mut out = Curve::new("t");
        for &(x, y) in points {
            out.push(x, y);
        }
        out
    }

    #[test]
    fn step_semantics() {
        let curve = c(&[(1, 0.2), (5, 0.6), (10, 0.9)]);
        assert_eq!(curve.value_at(0, 0.0), 0.0);
        assert_eq!(curve.value_at(1, 0.0), 0.2);
        assert_eq!(curve.value_at(4, 0.0), 0.2);
        assert_eq!(curve.value_at(7, 0.0), 0.6);
        assert_eq!(curve.value_at(100, 0.0), 0.9);
    }

    #[test]
    fn resample_and_mean() {
        let a = c(&[(1, 0.0), (10, 1.0)]);
        let b = c(&[(1, 1.0), (10, 1.0)]);
        let grid = [0, 5, 10];
        let m = Curve::mean("m", &[a, b], &grid, 0.0);
        assert_eq!(m.ys, vec![0.0, 0.5, 1.0]);
        assert_eq!(m.xs, vec![0, 5, 10]);
    }

    #[test]
    fn first_reaching_target() {
        let curve = c(&[(5, 0.3), (10, 0.75), (20, 0.9)]);
        assert_eq!(curve.first_reaching(0.75), Some(10));
        assert_eq!(curve.first_reaching(0.95), None);
        assert_eq!(curve.last(), 0.9);
    }

    #[test]
    fn empty_curve() {
        let curve = Curve::new("e");
        assert_eq!(curve.last(), 0.0);
        assert_eq!(curve.value_at(5, 0.7), 0.7);
        assert!(curve.is_empty());
    }
}

//! The `musicians` dataset: Wikipedia-style sentences; positives mention
//! musicians (entity extraction, ground truth via NELL in the paper).
//! 15.8K sentences, 10% positive.
//!
//! `composer` is a precise, high-coverage keyword (Figure 8 excludes it
//! from the biased seed; Figure 12b uses it as seed Rule 1, `piano` as
//! Rule 2 and a full sentence as Rule 3). Negatives include painters,
//! scientists and athletes whose templates share verbs (`performed`,
//! `played`, `famous`) so bare verbs are imprecise.

use crate::gen::{Bank, Family, Spec};
use crate::{Dataset, Task};

static BANKS: &[Bank] = &[
    (
        "NAME",
        &[
            "holst",
            "elgar",
            "varga",
            "lindqvist",
            "okafor",
            "marini",
            "petrov",
            "tanaka",
            "moreau",
            "silva",
            "novak",
            "keller",
            "ibanez",
            "fontaine",
            "olsen",
            "drummond",
            "castile",
            "werner",
            "alvarez",
            "kimura",
        ],
    ),
    (
        "WORK",
        &[
            "the fourth symphony",
            "a nocturne in g minor",
            "the chamber suite",
            "an early opera",
            "the string quartet",
            "a piano concerto",
            "the folk cycle",
            "a choral mass",
            "the second sonata",
            "a ballet score",
        ],
    ),
    (
        "CITY",
        &[
            "vienna", "prague", "leipzig", "milan", "lisbon", "krakow", "bergen", "kyoto",
        ],
    ),
    (
        "YEAR",
        &[
            "1781", "1804", "1837", "1862", "1891", "1910", "1924", "1947", "1969", "1983",
        ],
    ),
    (
        "INSTRUMENT",
        &[
            "piano", "violin", "cello", "flute", "organ", "guitar", "clarinet", "harp",
        ],
    ),
    (
        "FIELD",
        &[
            "physics",
            "chemistry",
            "botany",
            "geology",
            "astronomy",
            "medicine",
        ],
    ),
    (
        "TEAM",
        &["united", "rovers", "city", "athletic", "wanderers"],
    ),
];

static POS: &[Family] = &[
    Family {
        key: "composer",
        weight: 3.0,
        templates: &[
            "the composer {NAME} wrote {WORK} in {YEAR}",
            "{NAME} was a composer from {CITY}",
            "as a composer , {NAME} completed {WORK}",
            "{NAME} worked as a court composer in {CITY}",
        ],
    },
    Family {
        key: "composed",
        weight: 2.4,
        templates: &[
            "{NAME} composed {WORK} in {YEAR}",
            "{NAME} composed {WORK} for the {CITY} orchestra",
        ],
    },
    Family {
        key: "piano",
        weight: 2.2,
        templates: &[
            "{NAME} taught piano to the children of a countess",
            "{NAME} studied piano in {CITY} from {YEAR}",
            "the piano works of {NAME} were published in {YEAR}",
            "{NAME} gave piano recitals across europe",
        ],
    },
    Family {
        key: "instrumentalist",
        weight: 2.0,
        templates: &[
            "the {INSTRUMENT} virtuoso {NAME} toured {CITY} in {YEAR}",
            "{NAME} played {INSTRUMENT} in the royal orchestra",
            "{NAME} was principal {INSTRUMENT} of the {CITY} philharmonic",
        ],
    },
    Family {
        key: "singer",
        weight: 1.7,
        templates: &[
            "the singer {NAME} debuted at the {CITY} opera in {YEAR}",
            "{NAME} sang the lead role in {WORK}",
        ],
    },
    Family {
        key: "album",
        weight: 1.5,
        templates: &[
            "{NAME} released an album recorded in {CITY}",
            "the debut album by {NAME} appeared in {YEAR}",
        ],
    },
    Family {
        key: "conductor",
        weight: 1.3,
        templates: &[
            "{NAME} conducted the {CITY} symphony from {YEAR}",
            "as conductor , {NAME} premiered {WORK}",
        ],
    },
    Family {
        key: "band",
        weight: 1.1,
        templates: &[
            "{NAME} founded a band in {CITY} in {YEAR}",
            "the band led by {NAME} toured until {YEAR}",
        ],
    },
    Family {
        key: "songwriter",
        weight: 0.9,
        templates: &[
            "{NAME} wrote songs for the {CITY} stage",
            "the songwriter {NAME} penned {WORK}",
        ],
    },
    Family {
        key: "opera",
        weight: 0.8,
        templates: &[
            "the opera by {NAME} premiered in {CITY}",
            "{NAME} finished an opera based on a folk tale",
        ],
    },
];

static NEG: &[Family] = &[
    Family {
        key: "painter",
        weight: 2.6,
        templates: &[
            "the painter {NAME} exhibited in {CITY} in {YEAR}",
            "{NAME} painted portraits of the court in {CITY}",
            "a mural by {NAME} was restored in {YEAR}",
        ],
    },
    Family {
        key: "scientist",
        weight: 2.4,
        templates: &[
            "{NAME} published a study of {FIELD} in {YEAR}",
            "the {FIELD} professor {NAME} lectured in {CITY}",
            "{NAME} was awarded a prize for {FIELD} in {YEAR}",
        ],
    },
    Family {
        key: "athlete",
        weight: 2.2,
        templates: &[
            "{NAME} played for {TEAM} until {YEAR}",
            "{NAME} captained {TEAM} in the {YEAR} season",
            "the striker {NAME} signed with {TEAM}",
        ],
    },
    Family {
        key: "actor",
        weight: 1.8,
        templates: &[
            "{NAME} performed on the {CITY} stage in a drama",
            "the actor {NAME} starred in a silent film in {YEAR}",
        ],
    },
    Family {
        key: "writer",
        weight: 1.7,
        templates: &[
            "{NAME} wrote a novel set in {CITY}",
            "the essays of {NAME} appeared in {YEAR}",
        ],
    },
    Family {
        key: "politician",
        weight: 1.5,
        templates: &[
            "{NAME} was elected mayor of {CITY} in {YEAR}",
            "{NAME} served in parliament from {YEAR}",
        ],
    },
    Family {
        key: "architect",
        weight: 1.2,
        templates: &[
            "{NAME} designed a bridge completed in {YEAR}",
            "the {CITY} hall was designed by {NAME}",
        ],
    },
    Family {
        key: "explorer",
        weight: 1.0,
        templates: &[
            "{NAME} mapped the coast near {CITY} in {YEAR}",
            "the expedition of {NAME} reached the interior in {YEAR}",
        ],
    },
    Family {
        key: "chef",
        weight: 0.9,
        templates: &[
            "{NAME} opened a restaurant in {CITY} in {YEAR}",
            "the chef {NAME} earned two stars in {YEAR}",
        ],
    },
    Family {
        key: "generic-history",
        weight: 1.6,
        templates: &[
            "the {CITY} archive was founded in {YEAR}",
            "a flood damaged {CITY} in {YEAR}",
            "the {CITY} university opened its {FIELD} faculty in {YEAR}",
        ],
    },
];

pub fn spec() -> Spec {
    Spec {
        name: "musicians",
        task: Task::Entities,
        positive_rate: 0.10,
        pos_families: POS,
        neg_families: NEG,
        banks: BANKS,
        keywords: &[
            "composer",
            "piano",
            "orchestra",
            "opera",
            "album",
            "band",
            "symphony",
            "violin",
            "singer",
            "conducted",
        ],
        seed_rules: &[
            "composer",
            "piano",
            "taught piano to the children of a countess",
        ],
    }
}

/// Generate the dataset at `n` sentences (paper size: 15 800).
pub fn generate(n: usize, seed: u64) -> Dataset {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;

    #[test]
    fn matches_table1_statistics() {
        let d = generate(15_800, 42);
        let s = d.stats();
        assert_eq!(s.sentences, 15_800);
        assert!(
            (s.positive_pct - 10.0).abs() < 0.2,
            "pct {}",
            s.positive_pct
        );
        assert_eq!(s.task, Task::Entities);
    }

    #[test]
    fn composer_is_precise_high_coverage() {
        let d = generate(10_000, 42);
        let cov = Heuristic::phrase(&d.corpus, "composer")
            .unwrap()
            .coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(pos as f64 / cov.len() as f64 >= 0.9);
        assert!(cov.len() > 100, "coverage {}", cov.len());
    }

    #[test]
    fn bare_played_is_imprecise() {
        let d = generate(10_000, 42);
        let cov = Heuristic::phrase(&d.corpus, "played")
            .unwrap()
            .coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        let prec = pos as f64 / cov.len() as f64;
        assert!(
            prec < 0.8,
            "'played' should mix athletes and musicians: {prec}"
        );
    }

    #[test]
    fn wrote_is_imprecise_but_wrote_songs_precise() {
        let d = generate(10_000, 42);
        let wrote = Heuristic::phrase(&d.corpus, "wrote")
            .unwrap()
            .coverage(&d.corpus);
        let wrote_pos = wrote.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!((wrote_pos as f64) / (wrote.len() as f64) < 0.8);
        let songs = Heuristic::phrase(&d.corpus, "wrote songs")
            .unwrap()
            .coverage(&d.corpus);
        let songs_pos = songs.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(songs_pos as f64 / songs.len() as f64 >= 0.9);
    }

    #[test]
    fn piano_seed_rules_have_coverage() {
        let d = generate(15_800, 42);
        for rule in d.seed_rules.iter() {
            let h = Heuristic::phrase(&d.corpus, rule).unwrap();
            assert!(
                h.coverage(&d.corpus).len() >= 2,
                "seed rule {rule:?} must cover at least two sentences"
            );
        }
    }
}

//! Template-mixture corpus generation.
//!
//! A dataset is two weighted mixtures of *families* — positive and negative
//! — where each family holds several templates over shared slot banks.
//! Family weights follow a Zipf profile so a few families dominate and a
//! long tail of rarer families exists (that tail is what makes rule
//! discovery non-trivial: high-coverage rules run out and the system must
//! find the tail families).

use crate::{Dataset, Task};
use darwin_text::{Corpus, CorpusBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Block size of [`Spec::generate_streamed`]: sentences are sampled,
/// shuffled and analyzed in blocks of this many rows, so the raw text of
/// at most one block is ever alive. Pinned — the streamed output is
/// deterministic in `(n, seed)` alone, so this constant is part of the
/// generator's definition.
pub const GEN_CHUNK: usize = 65_536;

/// A surface-pattern family: several templates sharing a signature.
#[derive(Clone, Copy, Debug)]
pub struct Family {
    /// Stable diagnostic key (e.g. `"shuttle"`, `"caused-by"`).
    pub key: &'static str,
    /// Relative sampling weight within its mixture (before the Zipf tilt).
    pub weight: f64,
    /// Templates with `{BANK}` slots.
    pub templates: &'static [&'static str],
}

/// A slot bank: `{name}` in templates draws uniformly from `words`.
pub type Bank = (&'static str, &'static [&'static str]);

/// Everything needed to generate one dataset.
pub struct Spec {
    pub name: &'static str,
    pub task: Task,
    pub positive_rate: f64,
    pub pos_families: &'static [Family],
    pub neg_families: &'static [Family],
    pub banks: &'static [Bank],
    pub keywords: &'static [&'static str],
    pub seed_rules: &'static [&'static str],
}

impl Spec {
    /// Generate `n` sentences with the spec's positive rate. Deterministic
    /// in `(n, seed)`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        assert!(n > 0, "dataset size must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ fnv(self.name));
        let n_pos = ((n as f64) * self.positive_rate).round() as usize;
        let n_neg = n - n_pos;

        let family_names = self.family_names();
        let mut rows: Vec<(String, bool, u16)> = Vec::with_capacity(n);
        self.sample_mixture(self.pos_families, n_pos, true, 0, &mut rows, &mut rng);
        let neg_base = self.pos_families.len() as u16;
        self.sample_mixture(
            self.neg_families,
            n_neg,
            false,
            neg_base,
            &mut rows,
            &mut rng,
        );
        rows.shuffle(&mut rng);

        let corpus = Corpus::from_texts_parallel(
            &rows.iter().map(|(t, _, _)| t.as_str()).collect::<Vec<_>>(),
            num_threads(n),
        );
        let labels = rows.iter().map(|&(_, l, _)| l).collect();
        let family = rows.iter().map(|&(_, _, f)| f).collect();

        Dataset {
            name: self.name,
            task: self.task,
            corpus,
            labels,
            family,
            family_names,
            keywords: self.keywords.to_vec(),
            seed_rules: self.seed_rules.to_vec(),
        }
    }

    /// Generate `n` sentences in [`GEN_CHUNK`]-sized blocks: each block
    /// samples its share of positives, shuffles locally and is analyzed
    /// (tokenize → intern → tag → parse) before the next block's text is
    /// produced — the raw strings of at most one block are ever alive, so
    /// memory stays bounded at million-sentence scale. Deterministic in
    /// `(n, seed)`; the positive count equals [`Spec::generate`]'s exactly
    /// (per-block quotas telescope to the rounded total), though the
    /// sentence *order* is block-locally shuffled rather than globally.
    pub fn generate_streamed(&self, n: usize, seed: u64) -> Dataset {
        assert!(n > 0, "dataset size must be positive");
        let n_pos_total = ((n as f64) * self.positive_rate).round() as usize;
        let neg_base = self.pos_families.len() as u16;

        let mut builder = CorpusBuilder::with_threads(num_threads(GEN_CHUNK));
        let mut labels: Vec<bool> = Vec::with_capacity(n);
        let mut family: Vec<u16> = Vec::with_capacity(n);
        let mut rows: Vec<(String, bool, u16)> = Vec::with_capacity(GEN_CHUNK.min(n));

        let mut start = 0usize;
        while start < n {
            let end = (start + GEN_CHUNK).min(n);
            // Per-block quota: floor-difference of the cumulative positive
            // count, so block quotas telescope to exactly `n_pos_total`.
            let quota = end * n_pos_total / n - start * n_pos_total / n;
            // Per-block RNG keyed on the block start: any block can be
            // regenerated independently of the others.
            let mut rng =
                StdRng::seed_from_u64(seed ^ fnv(self.name) ^ (start as u64).wrapping_mul(0x9E37));
            rows.clear();
            self.sample_mixture(self.pos_families, quota, true, 0, &mut rows, &mut rng);
            self.sample_mixture(
                self.neg_families,
                (end - start) - quota,
                false,
                neg_base,
                &mut rows,
                &mut rng,
            );
            rows.shuffle(&mut rng);
            builder.push_texts(rows.iter().map(|(t, _, _)| t.as_str()));
            labels.extend(rows.iter().map(|&(_, l, _)| l));
            family.extend(rows.iter().map(|&(_, _, f)| f));
            start = end;
        }

        Dataset {
            name: self.name,
            task: self.task,
            corpus: builder.finish(),
            labels,
            family,
            family_names: self.family_names(),
            keywords: self.keywords.to_vec(),
            seed_rules: self.seed_rules.to_vec(),
        }
    }

    /// Diagnostic family keys, positives first — the index space of
    /// [`Dataset::family`].
    fn family_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        names.extend(self.pos_families.iter().map(|f| f.key));
        names.extend(self.neg_families.iter().map(|f| f.key));
        names
    }

    fn sample_mixture(
        &self,
        families: &'static [Family],
        count: usize,
        label: bool,
        base: u16,
        rows: &mut Vec<(String, bool, u16)>,
        rng: &mut StdRng,
    ) {
        // Zipf tilt over the declared order: family i keeps
        // weight_i / (i+1)^0.5 so earlier families dominate gently.
        let weights: Vec<f64> = families
            .iter()
            .enumerate()
            .map(|(i, f)| f.weight / ((i + 1) as f64).sqrt())
            .collect();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().expect("non-empty family list");

        for _ in 0..count {
            let x = rng.gen_range(0.0..total);
            let fi = cumulative
                .partition_point(|&c| c <= x)
                .min(families.len() - 1);
            let fam = &families[fi];
            let tmpl = fam.templates[rng.gen_range(0..fam.templates.len())];
            rows.push((self.fill(tmpl, rng), label, base + fi as u16));
        }
    }

    /// Replace `{BANK}` slots with uniformly drawn entries.
    fn fill(&self, template: &str, rng: &mut StdRng) -> String {
        let mut out = String::with_capacity(template.len() + 16);
        for (i, part) in template.split_whitespace().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if let Some(name) = part.strip_prefix('{').and_then(|p| p.strip_suffix('}')) {
                let bank = self
                    .banks
                    .iter()
                    .find(|(n, _)| *n == name)
                    .unwrap_or_else(|| panic!("dataset {}: unknown bank {{{name}}}", self.name));
                out.push_str(bank.1[rng.gen_range(0..bank.1.len())]);
            } else {
                out.push_str(part);
            }
        }
        out
    }
}

fn num_threads(n: usize) -> usize {
    if n >= 50_000 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
    } else {
        1
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    static BANKS: &[Bank] = &[("X", &["alpha", "beta"]), ("Y", &["one", "two", "three"])];
    static POS: &[Family] = &[
        Family {
            key: "p1",
            weight: 3.0,
            templates: &["good {X} thing", "nice {X} stuff"],
        },
        Family {
            key: "p2",
            weight: 1.0,
            templates: &["great {Y} item"],
        },
    ];
    static NEG: &[Family] = &[Family {
        key: "n1",
        weight: 1.0,
        templates: &["bad {X} thing about {Y}"],
    }];

    fn spec() -> Spec {
        Spec {
            name: "toy",
            task: Task::Intents,
            positive_rate: 0.25,
            pos_families: POS,
            neg_families: NEG,
            banks: BANKS,
            keywords: &["good"],
            seed_rules: &["good"],
        }
    }

    #[test]
    fn respects_size_and_rate() {
        let d = spec().generate(400, 1);
        assert_eq!(d.len(), 400);
        assert_eq!(d.positives(), 100);
        let s = d.stats();
        assert!((s.positive_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = spec().generate(100, 5);
        let b = spec().generate(100, 5);
        for i in 0..100u32 {
            assert_eq!(a.corpus.text(i), b.corpus.text(i));
            assert_eq!(a.labels[i as usize], b.labels[i as usize]);
        }
        let c = spec().generate(100, 6);
        let differs = (0..100u32).any(|i| a.corpus.text(i) != c.corpus.text(i));
        assert!(differs);
    }

    #[test]
    fn streamed_is_deterministic_and_matches_rate() {
        let a = spec().generate_streamed(400, 9);
        assert_eq!(a.len(), 400);
        assert_eq!(a.positives(), spec().generate(400, 9).positives());
        let b = spec().generate_streamed(400, 9);
        for i in 0..400u32 {
            assert_eq!(a.corpus.text(i), b.corpus.text(i));
            assert_eq!(a.labels[i as usize], b.labels[i as usize]);
            assert_eq!(a.family[i as usize], b.family[i as usize]);
        }
        let c = spec().generate_streamed(400, 10);
        assert!((0..400u32).any(|i| a.corpus.text(i) != c.corpus.text(i)));
    }

    /// Positive quotas telescope exactly across block boundaries: a size
    /// past one GEN_CHUNK still lands the rounded global positive count.
    #[test]
    fn streamed_quota_telescopes_across_blocks() {
        let n = GEN_CHUNK + 4_000;
        let d = spec().generate_streamed(n, 3);
        assert_eq!(d.len(), n);
        assert_eq!(d.positives(), ((n as f64) * 0.25).round() as usize);
        // Every slot filled, same as the in-memory generator.
        for i in (0..n as u32).step_by(977) {
            assert!(!d.corpus.text(i).contains('{'));
        }
    }

    #[test]
    fn family_ids_match_labels() {
        let d = spec().generate(300, 2);
        for i in 0..d.len() {
            let fam = d.family_names[d.family[i] as usize];
            let is_pos_family = fam.starts_with('p');
            assert_eq!(d.labels[i], is_pos_family, "family {fam}");
        }
    }

    #[test]
    fn slots_are_filled() {
        let d = spec().generate(200, 3);
        for i in 0..d.len() as u32 {
            let t = d.corpus.text(i);
            assert!(!t.contains('{'), "unfilled slot in {t}");
        }
    }

    #[test]
    fn earlier_families_dominate() {
        let d = spec().generate(2000, 4);
        let p1 = d
            .family
            .iter()
            .filter(|&&f| d.family_names[f as usize] == "p1")
            .count();
        let p2 = d
            .family
            .iter()
            .filter(|&&f| d.family_names[f as usize] == "p2")
            .count();
        assert!(p1 > p2 * 2, "p1={p1} p2={p2}");
    }
}

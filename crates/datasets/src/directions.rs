//! The `directions` dataset (paper Example 1): questions submitted by hotel
//! guests; positives ask for directions or transportation between locations.
//! 15.3K sentences, 3.8% positive, intent classification.
//!
//! Design notes (mirrors the paper's anecdotes):
//! * `best way to` is **imprecise** — it also heads "best way to order
//!   food" negatives; `best way to get to` is precise.
//! * `uber` is imprecise ("uber eats" negatives); `uber to` is precise.
//! * `shuttle` and `bart` are precise unigrams with no token overlap with
//!   the default seed — Figure 8 removes `shuttle` from the seed sample to
//!   test generalization.

use crate::gen::{Bank, Family, Spec};
use crate::{Dataset, Task};

static BANKS: &[Bank] = &[
    (
        "PLACE",
        &[
            "the airport",
            "the hotel",
            "downtown",
            "the pier",
            "union square",
            "the stadium",
            "the museum",
            "the convention center",
            "the city center",
            "the train station",
            "the ferry building",
            "the mall",
            "the beach",
            "the aquarium",
            "the park",
            "the theater",
            "chinatown",
            "the wharf",
            "the university",
            "the gardens",
        ],
    ),
    (
        "CITY",
        &[
            "sfo",
            "oakland",
            "berkeley",
            "san jose",
            "palo alto",
            "sausalito",
            "daly city",
        ],
    ),
    (
        "FOOD",
        &[
            "pizza",
            "sushi",
            "breakfast",
            "dinner",
            "room service",
            "a burger",
            "pasta",
            "dessert",
            "coffee",
            "sandwiches",
        ],
    ),
    (
        "TIME",
        &[
            "tonight",
            "tomorrow",
            "this evening",
            "at noon",
            "in the morning",
            "right now",
        ],
    ),
    (
        "SERVICE",
        &[
            "the spa",
            "the gym",
            "the pool",
            "laundry service",
            "housekeeping",
            "the bar",
        ],
    ),
];

static POS: &[Family] = &[
    Family {
        key: "best-way-get",
        weight: 3.0,
        templates: &[
            "what is the best way to get to {PLACE} ?",
            "what is the best way to get to {PLACE} from the hotel ?",
            "what would be the best way to get to {CITY} {TIME} ?",
            "is driving the best way to get to {PLACE} ?",
        ],
    },
    Family {
        key: "how-get",
        weight: 2.6,
        templates: &[
            "how do i get to {PLACE} from here ?",
            "how do we get to {PLACE} {TIME} ?",
            "how can i get to {CITY} from the hotel ?",
            "how do i get from {PLACE} to {PLACE} ?",
        ],
    },
    Family {
        key: "shuttle",
        weight: 2.2,
        templates: &[
            "is there a shuttle to {PLACE} ?",
            "does the hotel run a shuttle to the airport ?",
            "what time does the shuttle to {PLACE} leave ?",
            "can i book the shuttle to {CITY} {TIME} ?",
            "is the airport shuttle free for guests ?",
        ],
    },
    Family {
        key: "uber-taxi",
        weight: 2.0,
        templates: &[
            "is uber the fastest way to get to {PLACE} ?",
            "should i take a taxi or uber to {CITY} ?",
            "how much is a taxi to {PLACE} from the hotel ?",
            "can you call me an uber to {PLACE} {TIME} ?",
        ],
    },
    Family {
        key: "bart",
        weight: 1.8,
        templates: &[
            "is there a bart from {CITY} to the hotel ?",
            "which bart station is closest to {PLACE} ?",
            "does the bart run to {CITY} {TIME} ?",
            "how late does the bart to {CITY} run ?",
        ],
    },
    Family {
        key: "bus",
        weight: 1.6,
        templates: &[
            "which bus goes to {PLACE} ?",
            "is there a bus from the hotel to {PLACE} ?",
            "where do i catch the bus to {CITY} ?",
            "does the bus to {PLACE} stop near the hotel ?",
        ],
    },
    Family {
        key: "directions",
        weight: 1.5,
        templates: &[
            "can you give me directions to {PLACE} ?",
            "i need directions to {PLACE} from the hotel",
            "could you print directions to {CITY} for me ?",
        ],
    },
    Family {
        key: "walk",
        weight: 1.3,
        templates: &[
            "can i walk to {PLACE} from here ?",
            "is it possible to walk to {PLACE} or should i drive ?",
            "how long is the walk to {PLACE} ?",
        ],
    },
    Family {
        key: "distance",
        weight: 1.1,
        templates: &[
            "how far is {PLACE} from the hotel ?",
            "how far away is {CITY} ?",
            "what is the distance from the hotel to {PLACE} ?",
        ],
    },
    Family {
        key: "train",
        weight: 1.0,
        templates: &[
            "is there a train to {CITY} from here ?",
            "where is the nearest train to {CITY} ?",
            "what time is the last train to {CITY} ?",
        ],
    },
    Family {
        key: "ferry",
        weight: 0.8,
        templates: &[
            "does the ferry go to {CITY} ?",
            "where do we board the ferry to {CITY} ?",
        ],
    },
    Family {
        key: "rental-drive",
        weight: 0.7,
        templates: &[
            "should i rent a car to drive to {CITY} ?",
            "how long is the drive to {CITY} from the hotel ?",
        ],
    },
    Family {
        key: "transfer",
        weight: 0.6,
        templates: &[
            "do you arrange transfers to the airport {TIME} ?",
            "can the hotel arrange a transfer to {PLACE} ?",
        ],
    },
];

static NEG: &[Family] = &[
    Family {
        key: "order-food",
        weight: 3.0,
        templates: &[
            "what is the best way to order {FOOD} ?",
            "what is the best way to order {FOOD} from you ?",
            "can i order {FOOD} to the room {TIME} ?",
            "how do i order {FOOD} from the restaurant ?",
        ],
    },
    Family {
        key: "check-in",
        weight: 2.6,
        templates: &[
            "what is the best way to check in there ?",
            "can we check in early {TIME} ?",
            "how late can i check in ?",
            "is online check in available ?",
        ],
    },
    Family {
        key: "uber-eats",
        weight: 2.0,
        templates: &[
            "would uber eats be the fastest way to order ?",
            "does uber eats deliver {FOOD} to the hotel ?",
            "can i get {FOOD} on uber eats {TIME} ?",
        ],
    },
    Family {
        key: "amenities",
        weight: 2.2,
        templates: &[
            "what time does {SERVICE} open {TIME} ?",
            "is {SERVICE} free for guests ?",
            "how do i book {SERVICE} for {TIME} ?",
            "where is {SERVICE} located in the hotel ?",
        ],
    },
    Family {
        key: "wifi",
        weight: 1.8,
        templates: &[
            "what is the wifi password ?",
            "is the wifi free in the rooms ?",
            "the wifi is not working in my room",
        ],
    },
    Family {
        key: "billing",
        weight: 1.6,
        templates: &[
            "can i get a receipt for my stay ?",
            "why was my card charged twice ?",
            "what is the best way to settle the bill ?",
        ],
    },
    Family {
        key: "restaurant-rec",
        weight: 1.7,
        templates: &[
            "can you recommend a place for {FOOD} ?",
            "what is the best {FOOD} near the hotel ?",
            "any good places for {FOOD} {TIME} ?",
        ],
    },
    Family {
        key: "housekeeping",
        weight: 1.4,
        templates: &[
            "can housekeeping bring extra towels {TIME} ?",
            "please send housekeeping to my room",
            "when does housekeeping clean the rooms ?",
        ],
    },
    Family {
        key: "luggage",
        weight: 1.2,
        templates: &[
            "can you store my luggage after checkout ?",
            "where can i leave my luggage {TIME} ?",
        ],
    },
    Family {
        key: "booking",
        weight: 1.3,
        templates: &[
            "can i extend my stay by one night ?",
            "how do i cancel my reservation ?",
            "is a late checkout possible {TIME} ?",
        ],
    },
    Family {
        key: "events",
        weight: 1.0,
        templates: &[
            "what events are happening {TIME} ?",
            "is there live music at the bar {TIME} ?",
        ],
    },
    Family {
        key: "smalltalk",
        weight: 0.9,
        templates: &[
            "what is the weather like {TIME} ?",
            "thank you so much for the help",
            "the room is wonderful , thanks",
        ],
    },
    Family {
        key: "parking",
        weight: 1.1,
        templates: &[
            "how much is parking per night ?",
            "is valet parking available {TIME} ?",
        ],
    },
];

/// The generation spec (exposed for tests and custom sizes).
pub fn spec() -> Spec {
    Spec {
        name: "directions",
        task: Task::Intents,
        positive_rate: 0.038,
        pos_families: POS,
        neg_families: NEG,
        banks: BANKS,
        keywords: &[
            "way",
            "get",
            "shuttle",
            "bus",
            "taxi",
            "directions",
            "airport",
            "train",
            "walk",
            "far",
        ],
        seed_rules: &["best way to get to", "shuttle to", "how do i get to"],
    }
}

/// Generate the dataset at `n` sentences (paper size: 15 300).
pub fn generate(n: usize, seed: u64) -> Dataset {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;

    #[test]
    fn matches_table1_statistics() {
        let d = generate(15_300, 42);
        let s = d.stats();
        assert_eq!(s.sentences, 15_300);
        assert!(
            (s.positive_pct - 3.8).abs() < 0.15,
            "pct {}",
            s.positive_pct
        );
        assert_eq!(s.task, Task::Intents);
    }

    #[test]
    fn seed_rule_is_precise() {
        let d = generate(8000, 42);
        let h = Heuristic::phrase(&d.corpus, "best way to get to").unwrap();
        let cov = h.coverage(&d.corpus);
        assert!(!cov.is_empty());
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(pos as f64 / cov.len() as f64 >= 0.95, "{pos}/{}", cov.len());
    }

    #[test]
    fn best_way_to_is_imprecise() {
        let d = generate(8000, 42);
        let h = Heuristic::phrase(&d.corpus, "best way to").unwrap();
        let cov = h.coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        let prec = pos as f64 / cov.len() as f64;
        assert!(
            prec < 0.8,
            "bare 'best way to' must fail the oracle: {prec}"
        );
    }

    #[test]
    fn shuttle_is_precise_and_disjoint_from_seed() {
        let d = generate(8000, 42);
        let h = Heuristic::phrase(&d.corpus, "shuttle").unwrap();
        let cov = h.coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(pos as f64 / cov.len() as f64 >= 0.9);
        // No token overlap with the default seed rule "best way to get to":
        let seed = Heuristic::phrase(&d.corpus, "best way to get to").unwrap();
        let seed_cov: std::collections::HashSet<u32> =
            seed.coverage(&d.corpus).into_iter().collect();
        let overlap = cov.iter().filter(|i| seed_cov.contains(i)).count();
        assert!((overlap as f64) / (cov.len() as f64) < 0.2);
    }

    #[test]
    fn uber_is_imprecise_uber_to_is_precise() {
        let d = generate(10_000, 42);
        let uber = Heuristic::phrase(&d.corpus, "uber")
            .unwrap()
            .coverage(&d.corpus);
        let pos = uber.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(
            (pos as f64) / (uber.len() as f64) < 0.8,
            "'uber' alone too precise"
        );
    }

    #[test]
    fn positives_spread_over_many_families() {
        let d = generate(15_300, 42);
        let mut fams = std::collections::HashSet::new();
        for i in 0..d.len() {
            if d.labels[i] {
                fams.insert(d.family[i]);
            }
        }
        assert!(fams.len() >= 12, "positive families: {}", fams.len());
    }
}

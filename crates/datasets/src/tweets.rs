//! The `tweets` dataset (Wang et al. intent benchmark): classify tweet
//! intent into categories; the paper evaluates the Food intent (11.4%
//! positive over 2130 tweets) and reports similar results for Travel and
//! Career.

use crate::gen::{Bank, Family, Spec};
use crate::{Dataset, Task};

/// Which intent is the positive class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Intent {
    Food,
    Travel,
    Career,
}

impl Intent {
    pub fn name(self) -> &'static str {
        match self {
            Intent::Food => "food",
            Intent::Travel => "travel",
            Intent::Career => "career",
        }
    }
}

static BANKS: &[Bank] = &[
    (
        "FOOD",
        &[
            "tacos",
            "pizza",
            "ramen",
            "sushi",
            "wings",
            "pancakes",
            "dumplings",
            "bbq",
            "pho",
            "burritos",
            "ice cream",
            "fried chicken",
        ],
    ),
    (
        "MEAL",
        &["lunch", "dinner", "brunch", "breakfast", "a late snack"],
    ),
    (
        "CITY",
        &[
            "austin", "nyc", "chicago", "seattle", "miami", "denver", "la", "portland",
        ],
    ),
    (
        "PLACE",
        &[
            "the beach",
            "the mountains",
            "the coast",
            "the lake",
            "the desert",
        ],
    ),
    ("JOB", &["internship", "job", "gig", "position", "role"]),
    (
        "COMPANY",
        &[
            "the startup",
            "a big firm",
            "the lab",
            "the agency",
            "the studio",
        ],
    ),
    (
        "MOOD",
        &[
            "so bad",
            "right now",
            "today",
            "tonight",
            "all week",
            "again",
        ],
    ),
    (
        "SHOW",
        &[
            "the finale",
            "that new show",
            "the game",
            "the concert",
            "the match",
        ],
    ),
];

static FOOD_FAMS: &[Family] = &[
    Family {
        key: "craving",
        weight: 3.0,
        templates: &[
            "craving {FOOD} {MOOD}",
            "seriously craving {FOOD} {MOOD}",
            "been craving {FOOD} since monday",
        ],
    },
    Family {
        key: "grab-meal",
        weight: 2.4,
        templates: &[
            "anyone want to grab {MEAL} downtown ?",
            "who wants to grab {FOOD} for {MEAL} ?",
            "lets grab {FOOD} after class",
        ],
    },
    Family {
        key: "where-eat",
        weight: 2.0,
        templates: &[
            "where can i find good {FOOD} in {CITY} ?",
            "best {FOOD} spot in {CITY} ? asking for me",
            "need a {MEAL} place near campus",
        ],
    },
    Family {
        key: "hungry",
        weight: 1.6,
        templates: &[
            "so hungry i could eat {FOOD} forever",
            "starving , someone bring {FOOD}",
        ],
    },
    Family {
        key: "cooking",
        weight: 1.2,
        templates: &[
            "making {FOOD} from scratch tonight",
            "trying a new {FOOD} recipe for {MEAL}",
        ],
    },
];

static TRAVEL_FAMS: &[Family] = &[
    Family {
        key: "trip-plan",
        weight: 2.6,
        templates: &[
            "planning a trip to {CITY} next month",
            "booked flights to {CITY} for spring break",
            "road trip to {PLACE} this weekend",
        ],
    },
    Family {
        key: "wanderlust",
        weight: 1.8,
        templates: &[
            "i need a vacation at {PLACE} {MOOD}",
            "take me back to {CITY} already",
        ],
    },
    Family {
        key: "travel-tips",
        weight: 1.4,
        templates: &[
            "any tips for visiting {CITY} on a budget ?",
            "what should i pack for {PLACE} ?",
        ],
    },
];

static CAREER_FAMS: &[Family] = &[
    Family {
        key: "job-hunt",
        weight: 2.6,
        templates: &[
            "just applied for an {JOB} at {COMPANY}",
            "interview for the {JOB} tomorrow , wish me luck",
            "anyone hiring for a summer {JOB} in {CITY} ?",
        ],
    },
    Family {
        key: "job-news",
        weight: 1.8,
        templates: &[
            "got the {JOB} at {COMPANY} !",
            "first day at {COMPANY} went great",
        ],
    },
    Family {
        key: "career-advice",
        weight: 1.3,
        templates: &[
            "how do you negotiate salary for a first {JOB} ?",
            "resume tips for a {JOB} application ?",
        ],
    },
];

static CHATTER_FAMS: &[Family] = &[
    Family {
        key: "tv",
        weight: 2.4,
        templates: &[
            "cannot believe {SHOW} ended like that",
            "watching {SHOW} {MOOD}",
            "no spoilers for {SHOW} please",
        ],
    },
    Family {
        key: "mood",
        weight: 2.0,
        templates: &[
            "monday is not my day {MOOD}",
            "feeling great {MOOD} honestly",
            "why is the wifi down {MOOD}",
        ],
    },
    Family {
        key: "sports-chat",
        weight: 1.6,
        templates: &[
            "what a game by {CITY} last night",
            "refs ruined {SHOW} for everyone",
        ],
    },
    Family {
        key: "study",
        weight: 1.4,
        templates: &[
            "finals week is destroying me {MOOD}",
            "library till midnight {MOOD}",
        ],
    },
];

/// Generate with a chosen positive intent. The other two intents plus
/// generic chatter form the negative mixture — so intent families overlap
/// in tone but not in signature tokens.
pub fn generate_intent(n: usize, intent: Intent, seed: u64) -> Dataset {
    // Leak-free static assembly: pick families per intent.
    let (pos, negs): (&'static [Family], [&'static [Family]; 3]) = match intent {
        Intent::Food => (FOOD_FAMS, [TRAVEL_FAMS, CAREER_FAMS, CHATTER_FAMS]),
        Intent::Travel => (TRAVEL_FAMS, [FOOD_FAMS, CAREER_FAMS, CHATTER_FAMS]),
        Intent::Career => (CAREER_FAMS, [FOOD_FAMS, TRAVEL_FAMS, CHATTER_FAMS]),
    };
    // The Spec API wants a single &'static [Family] for negatives; build a
    // leaked, de-duplicated list once per (intent) using a static cache.
    let neg: &'static [Family] = cached_negs(intent, negs);
    let spec = Spec {
        name: match intent {
            Intent::Food => "tweets-food",
            Intent::Travel => "tweets-travel",
            Intent::Career => "tweets-career",
        },
        task: Task::Intents,
        positive_rate: 0.114,
        pos_families: pos,
        neg_families: neg,
        banks: BANKS,
        keywords: match intent {
            Intent::Food => &[
                "craving", "eat", "lunch", "dinner", "pizza", "hungry", "recipe", "grab", "spot",
                "tacos",
            ],
            Intent::Travel => &[
                "trip", "vacation", "flights", "visit", "pack", "travel", "beach", "booked",
                "road", "break",
            ],
            Intent::Career => &[
                "job",
                "interview",
                "hiring",
                "resume",
                "internship",
                "salary",
                "applied",
                "career",
                "offer",
                "work",
            ],
        },
        seed_rules: match intent {
            Intent::Food => &["craving", "grab lunch"],
            Intent::Travel => &["trip to", "vacation"],
            Intent::Career => &["applied for", "interview"],
        },
    };
    spec.generate(n, seed)
}

fn cached_negs(intent: Intent, negs: [&'static [Family]; 3]) -> &'static [Family] {
    use std::sync::OnceLock;
    static FOOD: OnceLock<Vec<Family>> = OnceLock::new();
    static TRAVEL: OnceLock<Vec<Family>> = OnceLock::new();
    static CAREER: OnceLock<Vec<Family>> = OnceLock::new();
    let cell = match intent {
        Intent::Food => &FOOD,
        Intent::Travel => &TRAVEL,
        Intent::Career => &CAREER,
    };
    cell.get_or_init(|| negs.iter().flat_map(|f| f.iter().copied()).collect())
}

/// Default: the Food intent at the paper's 2130 tweets.
pub fn generate(n: usize, seed: u64) -> Dataset {
    generate_intent(n, Intent::Food, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;

    #[test]
    fn matches_table1_statistics() {
        let d = generate(2130, 42);
        let s = d.stats();
        assert_eq!(s.sentences, 2130);
        assert!(
            (s.positive_pct - 11.4).abs() < 0.3,
            "pct {}",
            s.positive_pct
        );
    }

    #[test]
    fn craving_is_precise() {
        let d = generate(2130, 42);
        let cov = Heuristic::phrase(&d.corpus, "craving")
            .unwrap()
            .coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(pos as f64 / cov.len() as f64 >= 0.95);
    }

    #[test]
    fn all_three_intents_generate() {
        for intent in [Intent::Food, Intent::Travel, Intent::Career] {
            let d = generate_intent(1000, intent, 7);
            let pct = 100.0 * d.positives() as f64 / d.len() as f64;
            assert!((pct - 11.4).abs() < 0.5, "{intent:?}: {pct}");
            assert!(d.seed_rules.len() >= 2);
        }
    }

    #[test]
    fn intents_do_not_share_positive_signatures() {
        let food = generate_intent(2000, Intent::Food, 7);
        // "craving" never appears in travel/career positives of the same
        // underlying distribution: check against food negatives.
        let cov = Heuristic::phrase(&food.corpus, "craving")
            .unwrap()
            .coverage(&food.corpus);
        let neg_hits = cov.iter().filter(|&&i| !food.labels[i as usize]).count();
        assert!(neg_hits <= cov.len() / 10);
    }
}

//! Synthetic versions of the five Darwin evaluation corpora (paper §4.1,
//! Table 1).
//!
//! The original corpora are internal (directions), licensed (ClueWeb), or
//! large external resources (Wikipedia + NELL); per DESIGN.md we substitute
//! seeded template generators that reproduce the statistics of Table 1 and
//! — more importantly — the *combinatorial structure* the evaluation
//! exercises: each positive class is a Zipf-weighted mixture of dozens of
//! surface-pattern families, negatives share tokens with positives so that
//! over-general rules are imprecise (e.g. bare `by` in cause-effect, `best
//! way to` in directions), and some precise families share no tokens with
//! the default seed rule (so generalization beyond the seed is required,
//! Figure 8).
//!
//! | dataset | sentences | % positive | task |
//! |---|---|---|---|
//! | [`cause_effect`] | 10.7K | 12.2 | Relations |
//! | [`musicians`] | 15.8K | 10.0 | Entities |
//! | [`directions`] | 15.3K | 3.8 | Intents |
//! | [`professions`] | 1M (default 200K) | 1.1 | Entities |
//! | [`tweets`] | 2130 | 11.4 (Food) | Intents |

pub mod cause_effect;
pub mod directions;
pub mod gen;
pub mod musicians;
pub mod professions;
pub mod tweets;

use darwin_text::Corpus;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Labeling task type (Table 1's "Labeling" column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Task {
    Relations,
    Entities,
    Intents,
}

impl Task {
    pub fn name(self) -> &'static str {
        match self {
            Task::Relations => "Relations",
            Task::Entities => "Entities",
            Task::Intents => "Intents",
        }
    }
}

/// A generated dataset: analyzed corpus + ground truth + experiment handles.
pub struct Dataset {
    pub name: &'static str,
    pub task: Task,
    pub corpus: Corpus,
    /// Ground-truth label per sentence (used to synthesize oracle answers).
    pub labels: Vec<bool>,
    /// Template-family id per sentence (diagnostics; maps into
    /// [`Dataset::family_names`]).
    pub family: Vec<u16>,
    pub family_names: Vec<&'static str>,
    /// The 10 task keywords given to the Keyword-Sampling baseline.
    pub keywords: Vec<&'static str>,
    /// Candidate seed rules (TokensRegex text); the first is the default.
    pub seed_rules: Vec<&'static str>,
}

/// Summary row for Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    pub name: &'static str,
    pub sentences: usize,
    pub positive_pct: f64,
    pub task: Task,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Number of positive sentences.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Table 1 row.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name,
            sentences: self.len(),
            positive_pct: 100.0 * self.positives() as f64 / self.len().max(1) as f64,
            task: self.task,
        }
    }

    /// A random labeled seed subset of `n` sentences (what Snuba is given).
    pub fn seed_sample(&self, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..self.len() as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(n);
        ids
    }

    /// The biased seed sampler of Figure 8: a random subset that excludes
    /// every sentence containing `exclude_token`.
    pub fn biased_seed_sample(&self, n: usize, exclude_token: &str, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let excl = self.corpus.vocab().get(exclude_token);
        let mut ids: Vec<u32> = (0..self.len() as u32)
            .filter(|&id| match excl {
                Some(sym) => !self.corpus.sentence(id).tokens.contains(&sym),
                None => true,
            })
            .collect();
        ids.shuffle(&mut rng);
        ids.truncate(n);
        ids
    }

    /// A seed sample guaranteed to contain `n_pos` positives (the paper's
    /// "if we employ expert to sample positives" variant).
    pub fn positive_seed_sample(&self, n_pos: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<u32> = (0..self.len() as u32)
            .filter(|&i| self.labels[i as usize])
            .collect();
        pos.shuffle(&mut rng);
        pos.truncate(n_pos);
        pos
    }

    /// Two random positive sentence ids (the "couple of positive sentences"
    /// initialization of Algorithm 1).
    pub fn two_positives(&self, seed: u64) -> Vec<u32> {
        self.positive_seed_sample(2, seed)
    }

    /// Uniformly random sentence ids (the pipeline samples these as
    /// presumed negatives for classifier training).
    pub fn random_negatives(&self, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E47);
        (0..n)
            .map(|_| rng.gen_range(0..self.len() as u32))
            .collect()
    }
}

/// Generate all five datasets at their paper sizes (professions capped at
/// `professions_n`; pass 1_000_000 for the full-paper scale).
pub fn all_datasets(professions_n: usize, seed: u64) -> Vec<Dataset> {
    vec![
        cause_effect::generate(10_700, seed),
        musicians::generate(15_800, seed),
        directions::generate(15_300, seed),
        professions::generate(professions_n, seed),
        tweets::generate(2_130, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_sample_is_deterministic_and_sized() {
        let d = directions::generate(2000, 7);
        let a = d.seed_sample(50, 1);
        let b = d.seed_sample(50, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let c = d.seed_sample(50, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn biased_sample_excludes_token() {
        let d = directions::generate(4000, 7);
        let ids = d.biased_seed_sample(200, "shuttle", 3);
        let shuttle = d.corpus.vocab().get("shuttle").unwrap();
        for id in ids {
            assert!(!d.corpus.sentence(id).tokens.contains(&shuttle));
        }
    }

    #[test]
    fn positive_seed_sample_is_all_positive() {
        let d = musicians::generate(3000, 7);
        for id in d.positive_seed_sample(20, 5) {
            assert!(d.labels[id as usize]);
        }
    }
}

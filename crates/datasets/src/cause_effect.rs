//! The `cause-effect` dataset (SemEval-2010 task 8 style): positives
//! describe a cause→effect relation between two entities. 10.7K sentences,
//! 12.2% positive, relation extraction.
//!
//! The Figure 11 traversal story is wired in: `caused by` and `triggered
//! by` are precise, but bare `by` is swamped by passive non-causal
//! negatives ("written by", "painted by", "paid by card", "by the door"),
//! so a traversal that generalizes `has been caused by → by` must
//! re-specialize (`by → triggered by`).

use crate::gen::{Bank, Family, Spec};
use crate::{Dataset, Task};

static BANKS: &[Bank] = &[
    (
        "EVENT",
        &[
            "the outage",
            "the flood",
            "the fire",
            "the delay",
            "the crash",
            "the shortage",
            "the epidemic",
            "the collapse",
            "the blackout",
            "the landslide",
            "the recession",
            "the explosion",
            "the famine",
            "the erosion",
        ],
    ),
    (
        "AGENT",
        &[
            "the storm",
            "lightning",
            "a gas leak",
            "the earthquake",
            "heavy rain",
            "a virus",
            "the drought",
            "a short circuit",
            "the strike",
            "overheating",
            "a software bug",
            "the frost",
            "high winds",
            "corrosion",
        ],
    ),
    (
        "NAME",
        &[
            "marlowe", "okafor", "petrov", "tanaka", "silva", "keller", "moreau", "novak",
        ],
    ),
    (
        "THING",
        &[
            "the novel",
            "the mural",
            "the bridge",
            "the cathedral",
            "the portrait",
            "the score",
        ],
    ),
    (
        "PLACE",
        &[
            "the valley",
            "the coast",
            "the station",
            "the harbor",
            "the old town",
        ],
    ),
];

static POS: &[Family] = &[
    Family {
        key: "caused-by",
        weight: 3.0,
        templates: &[
            "{EVENT} was caused by {AGENT}",
            "{EVENT} has been caused by {AGENT}",
            "officials said {EVENT} was caused by {AGENT}",
            "{EVENT} in {PLACE} was caused by {AGENT}",
        ],
    },
    Family {
        key: "caused",
        weight: 2.4,
        templates: &[
            "{AGENT} caused {EVENT}",
            "{AGENT} caused {EVENT} in {PLACE}",
            "{AGENT} caused {EVENT} within hours",
        ],
    },
    Family {
        key: "triggered",
        weight: 2.0,
        templates: &[
            "{EVENT} was triggered by {AGENT}",
            "{AGENT} triggered {EVENT} in {PLACE}",
            "{EVENT} appears to have been triggered by {AGENT}",
        ],
    },
    Family {
        key: "led-to",
        weight: 1.7,
        templates: &[
            "{AGENT} led to {EVENT}",
            "{AGENT} eventually led to {EVENT} in {PLACE}",
        ],
    },
    Family {
        key: "resulted",
        weight: 1.5,
        templates: &[
            "{AGENT} resulted in {EVENT}",
            "{EVENT} resulted from {AGENT}",
        ],
    },
    Family {
        key: "due-to",
        weight: 1.3,
        templates: &[
            "{EVENT} was due to {AGENT}",
            "{EVENT} in {PLACE} was largely due to {AGENT}",
        ],
    },
    Family {
        key: "because-of",
        weight: 1.1,
        templates: &[
            "{EVENT} happened because of {AGENT}",
            "because of {AGENT} , {EVENT} spread to {PLACE}",
        ],
    },
    Family {
        key: "induces",
        weight: 0.9,
        templates: &[
            "{AGENT} induces {EVENT}",
            "researchers showed that {AGENT} induces {EVENT}",
        ],
    },
    Family {
        key: "blamed-on",
        weight: 0.8,
        templates: &[
            "{EVENT} was blamed on {AGENT}",
            "investigators blamed {EVENT} on {AGENT}",
        ],
    },
    Family {
        key: "stems-from",
        weight: 0.7,
        templates: &[
            "{EVENT} stems from {AGENT}",
            "{EVENT} in {PLACE} stems from {AGENT}",
        ],
    },
];

static NEG: &[Family] = &[
    Family {
        key: "written-by",
        weight: 2.6,
        templates: &[
            "{THING} was written by {NAME}",
            "{THING} was written by {NAME} in exile",
            "a preface was written by {NAME}",
        ],
    },
    Family {
        key: "made-by",
        weight: 2.3,
        templates: &[
            "{THING} was painted by {NAME}",
            "{THING} was designed by {NAME}",
            "{THING} was restored by {NAME} last spring",
        ],
    },
    Family {
        key: "by-location",
        weight: 2.0,
        templates: &[
            "the inn stands by the harbor",
            "they waited by the door of the station",
            "a path runs by {PLACE}",
        ],
    },
    Family {
        key: "paid-by",
        weight: 1.7,
        templates: &[
            "the fee can be paid by card",
            "tickets are sold by the dozen",
            "the room was booked by {NAME}",
        ],
    },
    Family {
        key: "travel-by",
        weight: 1.5,
        templates: &[
            "{NAME} traveled by train to {PLACE}",
            "goods arrive by ship at {PLACE}",
        ],
    },
    Family {
        key: "descriptive",
        weight: 2.1,
        templates: &[
            "{THING} attracts visitors to {PLACE}",
            "{NAME} lived near {PLACE} for years",
            "{PLACE} is known for its markets",
            "{THING} was admired across the region",
        ],
    },
    Family {
        key: "reports",
        weight: 1.6,
        templates: &[
            "{NAME} reported on {EVENT} for the paper",
            "a committee reviewed {EVENT} last month",
            "{EVENT} was discussed at the council",
        ],
    },
    Family {
        key: "recovery",
        weight: 1.2,
        templates: &[
            "crews repaired the damage after {EVENT}",
            "{PLACE} reopened weeks after {EVENT}",
        ],
    },
];

pub fn spec() -> Spec {
    Spec {
        name: "cause-effect",
        task: Task::Relations,
        positive_rate: 0.122,
        pos_families: POS,
        neg_families: NEG,
        banks: BANKS,
        keywords: &[
            "caused",
            "cause",
            "triggered",
            "led",
            "resulted",
            "due",
            "because",
            "induces",
            "blamed",
            "effect",
        ],
        seed_rules: &["has been caused by", "caused by", "triggered by"],
    }
}

/// Generate the dataset at `n` sentences (paper size: 10 700).
pub fn generate(n: usize, seed: u64) -> Dataset {
    spec().generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;

    fn precision(d: &Dataset, rule: &str) -> (f64, usize) {
        let cov = Heuristic::phrase(&d.corpus, rule)
            .unwrap()
            .coverage(&d.corpus);
        let pos = cov.iter().filter(|&&i| d.labels[i as usize]).count();
        (pos as f64 / cov.len().max(1) as f64, cov.len())
    }

    #[test]
    fn matches_table1_statistics() {
        let d = generate(10_700, 42);
        let s = d.stats();
        assert_eq!(s.sentences, 10_700);
        assert!(
            (s.positive_pct - 12.2).abs() < 0.2,
            "pct {}",
            s.positive_pct
        );
        assert_eq!(s.task, Task::Relations);
    }

    #[test]
    fn figure11_precision_structure() {
        let d = generate(10_700, 42);
        let (p_caused_by, _) = precision(&d, "caused by");
        let (p_triggered_by, _) = precision(&d, "triggered by");
        let (p_by, n_by) = precision(&d, "by");
        assert!(p_caused_by >= 0.95, "caused by: {p_caused_by}");
        assert!(p_triggered_by >= 0.95, "triggered by: {p_triggered_by}");
        assert!(p_by < 0.8, "bare 'by' must be noisy: {p_by} over {n_by}");
        assert!(n_by > 1000, "'by' must be high-coverage");
    }

    #[test]
    fn seed_rule_generalization_chain_exists() {
        // Figure 11: has been caused by -> caused by -> by -> triggered by.
        let d = generate(10_700, 42);
        for rule in ["has been caused by", "caused by", "by", "triggered by"] {
            let h = Heuristic::phrase(&d.corpus, rule).unwrap();
            assert!(!h.coverage(&d.corpus).is_empty(), "{rule}");
        }
    }
}

//! The `professions` dataset (ClueWeb style): positives mention a
//! profession. Paper scale: 1M sentences, 1.1% positive — the stress test
//! for indexing and the incremental re-scoring optimization (§4.5). The
//! default experiment scale is 200K (pass `1_000_000` for the full run).
//!
//! The paper's example TreeMatch heuristic for this dataset is
//! `/is/NOUN ∧ job`; templates like "her job is a {PROF}" exercise it.

use crate::gen::{Bank, Family, Spec};
use crate::{Dataset, Task};

static BANKS: &[Bank] = &[
    (
        "PROF",
        &[
            "teacher",
            "nurse",
            "engineer",
            "scientist",
            "lawyer",
            "carpenter",
            "plumber",
            "architect",
            "journalist",
            "librarian",
            "surgeon",
            "electrician",
            "accountant",
            "pharmacist",
            "translator",
            "firefighter",
            "pilot",
            "veterinarian",
            "economist",
            "geologist",
        ],
    ),
    (
        "NAME",
        &[
            "jordan", "casey", "riley", "morgan", "avery", "quinn", "reese", "rowan", "sasha",
            "devon",
        ],
    ),
    (
        "ORG",
        &[
            "the county hospital",
            "a local firm",
            "the high school",
            "the city lab",
            "a shipping company",
            "the regional clinic",
            "a design studio",
            "the daily gazette",
            "a construction outfit",
            "the public library",
        ],
    ),
    (
        "CITY",
        &[
            "austin", "denver", "portland", "madison", "raleigh", "tucson", "omaha", "boise",
        ],
    ),
    (
        "TOPIC",
        &[
            "the weather",
            "the playoffs",
            "a new phone",
            "the election",
            "gas prices",
            "a recipe",
            "the traffic",
            "a movie",
            "the garden",
            "holiday plans",
        ],
    ),
    ("NUM", &["two", "three", "five", "seven", "ten", "a dozen"]),
];

static POS: &[Family] = &[
    Family {
        key: "worked-as",
        weight: 3.0,
        templates: &[
            "{NAME} worked as a {PROF} at {ORG}",
            "{NAME} worked as a {PROF} in {CITY} for years",
            "before that , {NAME} worked as a {PROF}",
        ],
    },
    Family {
        key: "job-is",
        weight: 2.4,
        templates: &[
            "her job is a {PROF} position at {ORG}",
            "his job is a {PROF} role in {CITY}",
            "the job is a {PROF} post with benefits",
        ],
    },
    Family {
        key: "is-a-prof",
        weight: 2.2,
        templates: &[
            "{NAME} is a {PROF} at {ORG}",
            "{NAME} is a licensed {PROF} in {CITY}",
            "my neighbor is a {PROF}",
        ],
    },
    Family {
        key: "hired",
        weight: 1.8,
        templates: &[
            "{ORG} hired a new {PROF} last month",
            "{NAME} was hired as a {PROF} by {ORG}",
        ],
    },
    Family {
        key: "career",
        weight: 1.5,
        templates: &[
            "{NAME} built a career as a {PROF}",
            "a career as a {PROF} takes training",
        ],
    },
    Family {
        key: "retired",
        weight: 1.2,
        templates: &[
            "{NAME} retired after decades as a {PROF}",
            "the {PROF} retired from {ORG} in {CITY}",
        ],
    },
    Family {
        key: "trained",
        weight: 1.0,
        templates: &[
            "{NAME} trained as a {PROF} in {CITY}",
            "it takes years to train as a {PROF}",
        ],
    },
    Family {
        key: "profession-of",
        weight: 0.8,
        templates: &[
            "the profession of {PROF} is in demand",
            "{NAME} chose the profession of {PROF}",
        ],
    },
];

static NEG: &[Family] = &[
    Family {
        key: "chatter",
        weight: 3.0,
        templates: &[
            "everyone was talking about {TOPIC} today",
            "{NAME} posted about {TOPIC} again",
            "i can not believe {TOPIC} this week",
            "{TOPIC} was the only news in {CITY}",
        ],
    },
    Family {
        key: "commerce",
        weight: 2.6,
        templates: &[
            "the store in {CITY} sells {NUM} kinds of bread",
            "shipping takes {NUM} days to {CITY}",
            "prices rose {NUM} percent last quarter",
        ],
    },
    Family {
        key: "weather",
        weight: 2.2,
        templates: &[
            "rain is expected in {CITY} for {NUM} days",
            "the forecast for {CITY} looks clear",
        ],
    },
    Family {
        key: "sports",
        weight: 2.0,
        templates: &[
            "{CITY} won by {NUM} points last night",
            "the {CITY} game went to overtime",
        ],
    },
    Family {
        key: "travel",
        weight: 1.7,
        templates: &[
            "{NAME} drove from {CITY} to {CITY} overnight",
            "the flight to {CITY} was delayed {NUM} hours",
        ],
    },
    Family {
        key: "food",
        weight: 1.5,
        templates: &[
            "the diner in {CITY} serves breakfast all day",
            "{NAME} tried {NUM} new restaurants in {CITY}",
        ],
    },
    Family {
        key: "job-nearmiss",
        weight: 1.1,
        templates: &[
            "the print job is stuck in the queue again",
            "a paint job like that costs {NUM} hundred",
            "the repair job on the deck took {NUM} days",
        ],
    },
    Family {
        key: "worked-nearmiss",
        weight: 1.0,
        templates: &[
            "{NAME} worked on the garden all weekend",
            "the trick worked on the second try",
        ],
    },
];

pub fn spec() -> Spec {
    Spec {
        name: "professions",
        task: Task::Entities,
        positive_rate: 0.011,
        pos_families: POS,
        neg_families: NEG,
        banks: BANKS,
        keywords: &[
            "job",
            "worked",
            "career",
            "hired",
            "teacher",
            "nurse",
            "engineer",
            "profession",
            "retired",
            "trained",
        ],
        seed_rules: &["worked as a", "is a teacher", "career as a"],
    }
}

/// Generate the dataset at `n` sentences (paper size: 1 000 000; default
/// experiments use 200 000).
pub fn generate(n: usize, seed: u64) -> Dataset {
    spec().generate(n, seed)
}

/// [`generate`] in bounded memory ([`crate::gen::Spec::generate_streamed`]) —
/// the path the million-sentence refresh benchmark uses.
pub fn generate_streamed(n: usize, seed: u64) -> Dataset {
    spec().generate_streamed(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_grammar::Heuristic;

    #[test]
    fn matches_table1_statistics() {
        let d = generate(50_000, 42);
        let s = d.stats();
        assert!((s.positive_pct - 1.1).abs() < 0.1, "pct {}", s.positive_pct);
        assert_eq!(s.task, Task::Entities);
    }

    #[test]
    fn worked_as_precise_bare_job_imprecise() {
        let d = generate(40_000, 42);
        let wa = Heuristic::phrase(&d.corpus, "worked as a")
            .unwrap()
            .coverage(&d.corpus);
        let wa_pos = wa.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(wa_pos as f64 / wa.len() as f64 >= 0.95);
        let job = Heuristic::phrase(&d.corpus, "job")
            .unwrap()
            .coverage(&d.corpus);
        let job_pos = job.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(
            (job_pos as f64) / (job.len() as f64) < 0.8,
            "'job' has near-miss negatives"
        );
    }

    #[test]
    fn treematch_job_pattern_fires() {
        let d = generate(5_000, 42);
        // The paper's professions heuristic style: a NOUN child under "is"
        // plus "job" nearby in the tree.
        let h = Heuristic::tree(&d.corpus, "is/NOUN").unwrap();
        assert!(!h.coverage(&d.corpus).is_empty());
    }

    #[test]
    fn severe_imbalance() {
        let d = generate(30_000, 42);
        // A 25-sentence random sample rarely contains even one positive —
        // the imbalanced-setting motivation from the paper's introduction.
        let sample = d.seed_sample(25, 9);
        let pos = sample.iter().filter(|&&i| d.labels[i as usize]).count();
        assert!(pos <= 3);
    }
}

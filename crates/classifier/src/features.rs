//! Feature extraction shared by the classifiers.
//!
//! The CNN consumes "a matrix created by stacking the word-embedding vectors
//! of the words appearing in the sentence" (paper §4.1); logistic regression
//! consumes the mean embedding concatenated with a hashed bag-of-words.

use darwin_text::{Corpus, Embeddings, Sym};

/// Stack the embedding matrix for sentence `id` into `out`
/// (`max_len × dim`, zero-padded/truncated). Returns the effective length.
pub fn embedding_matrix(
    corpus: &Corpus,
    emb: &Embeddings,
    id: u32,
    max_len: usize,
    out: &mut [f32],
) -> usize {
    let dim = emb.dim();
    debug_assert_eq!(out.len(), max_len * dim);
    out.iter_mut().for_each(|x| *x = 0.0);
    let toks = &corpus.sentence(id).tokens;
    let n = toks.len().min(max_len);
    for (t, &sym) in toks.iter().take(n).enumerate() {
        out[t * dim..(t + 1) * dim].copy_from_slice(emb.vector(sym));
    }
    n
}

/// Number of hashed bag-of-words buckets used by [`logreg_features`].
pub const BOW_BUCKETS: usize = 4096;

/// Mean embedding (dim) ++ hashed bag-of-words (BOW_BUCKETS) ++ bias (1).
pub fn logreg_dim(emb: &Embeddings) -> usize {
    emb.dim() + BOW_BUCKETS + 1
}

/// Fill `out` (length [`logreg_dim`]) with logistic-regression features.
pub fn logreg_features(corpus: &Corpus, emb: &Embeddings, id: u32, out: &mut [f32]) {
    let dim = emb.dim();
    debug_assert_eq!(out.len(), logreg_dim(emb));
    out.iter_mut().for_each(|x| *x = 0.0);
    let toks = &corpus.sentence(id).tokens;
    emb.mean_into(toks, &mut out[..dim]);
    // The mean of unit vectors has small magnitude; rescale so the
    // embedding block competes with the bag-of-words block instead of
    // being optimized away (the embeddings are what let the classifier
    // generalize to rule families it has not seen labeled yet).
    out[..dim].iter_mut().for_each(|x| *x *= 4.0);
    if !toks.is_empty() {
        let w = 1.0 / (toks.len() as f32).sqrt();
        for &t in toks {
            out[dim + bow_bucket(t)] += w;
        }
    }
    out[dim + BOW_BUCKETS] = 1.0; // bias
}

#[inline]
pub(crate) fn bow_bucket(t: Sym) -> usize {
    // Fibonacci hashing of the symbol id.
    ((t.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as usize % BOW_BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn setup() -> (Corpus, Embeddings) {
        let c = Corpus::from_texts([
            "the shuttle goes to the airport",
            "pizza with extra cheese",
            "",
        ]);
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        (c, e)
    }

    #[test]
    fn matrix_is_padded_and_truncated() {
        let (c, e) = setup();
        let mut out = vec![0.0; 4 * e.dim()];
        let n = embedding_matrix(&c, &e, 0, 4, &mut out);
        assert_eq!(n, 4, "6-token sentence truncated to 4");
        // First row equals the embedding of "the".
        let the = c.vocab().get("the").unwrap();
        assert_eq!(&out[..e.dim()], e.vector(the));

        let mut out2 = vec![1.0; 8 * e.dim()];
        let n2 = embedding_matrix(&c, &e, 1, 8, &mut out2);
        assert_eq!(n2, 4);
        // Padding rows zeroed.
        assert!(out2[4 * e.dim()..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn logreg_features_have_bias_and_bow() {
        let (c, e) = setup();
        let mut f = vec![0.0; logreg_dim(&e)];
        logreg_features(&c, &e, 0, &mut f);
        assert_eq!(f[logreg_dim(&e) - 1], 1.0, "bias");
        let bow_mass: f32 = f[e.dim()..e.dim() + BOW_BUCKETS].iter().sum();
        assert!(bow_mass > 0.0);
    }

    #[test]
    fn empty_sentence_features_are_finite() {
        let (c, e) = setup();
        let mut f = vec![0.0; logreg_dim(&e)];
        logreg_features(&c, &e, 2, &mut f);
        assert!(f.iter().all(|x| x.is_finite()));
        assert_eq!(f[logreg_dim(&e) - 1], 1.0);
    }

    #[test]
    fn same_sentence_same_features() {
        let (c, e) = setup();
        let mut a = vec![0.0; logreg_dim(&e)];
        let mut b = vec![0.0; logreg_dim(&e)];
        logreg_features(&c, &e, 0, &mut a);
        logreg_features(&c, &e, 0, &mut b);
        assert_eq!(a, b);
    }
}

//! Logistic regression over mean-embedding + hashed bag-of-words features.
//!
//! The fast alternative to the Kim CNN: same [`TextClassifier`] contract,
//! orders of magnitude cheaper to retrain. Used by experiments that sweep
//! many pipeline configurations, and as the comparison point in the
//! classifier-quality ablation.

#![allow(clippy::needless_range_loop)] // index math mirrors the tensor strides

use crate::adam::{sigmoid, Param};
use crate::features::{logreg_dim, logreg_features};
use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`LogReg`].
#[derive(Clone, Debug, PartialEq)]
pub struct LogRegConfig {
    pub epochs: usize,
    pub lr: f32,
    /// L2 on the dense (mean-embedding) block.
    pub l2: f32,
    /// L2 on the hashed bag-of-words block. Kept much stronger than `l2`:
    /// the BoW block can memorize the exact surface of the training
    /// positives, which would zero out the embedding pathway Darwin needs
    /// for semantic generalization (paper §3, "bus" → "public transport").
    pub l2_bow: f32,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 12,
            lr: 0.05,
            l2: 1e-4,
            l2_bow: 6e-3,
        }
    }
}

/// Binary logistic regression trained with Adam.
pub struct LogReg {
    cfg: LogRegConfig,
    w: Param,
    dim: usize,
    seed: u64,
    step: u32,
}

impl LogReg {
    pub fn new(emb: &Embeddings, cfg: LogRegConfig, seed: u64) -> LogReg {
        let dim = logreg_dim(emb);
        LogReg {
            cfg,
            w: Param::zeros(dim),
            dim,
            seed,
            step: 0,
        }
    }

    fn score(&self, f: &[f32]) -> f32 {
        let mut z = 0.0;
        for (a, b) in self.w.w.iter().zip(f) {
            z += a * b;
        }
        sigmoid(z)
    }
}

impl TextClassifier for LogReg {
    fn fit(&mut self, corpus: &Corpus, emb: &Embeddings, pos: &[u32], neg: &[u32]) {
        self.w = Param::zeros(self.dim);
        self.step = 0;
        let mut data: Vec<(u32, f32)> = pos
            .iter()
            .map(|&i| (i, 1.0))
            .chain(neg.iter().map(|&i| (i, 0.0)))
            .collect();
        if data.is_empty() {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x10C);
        let mut f = vec![0.0f32; self.dim];
        // Class-balanced loss: Darwin trains on few positives against many
        // sampled negatives; without re-weighting, predicted probabilities
        // collapse below the 0.5 benefit threshold of UniversalSearch.
        let pos_weight = if pos.is_empty() || neg.is_empty() {
            1.0
        } else {
            (neg.len() as f32 / pos.len() as f32).clamp(0.25, 2.0)
        };
        for _ in 0..self.cfg.epochs {
            data.shuffle(&mut rng);
            for &(id, y) in &data {
                logreg_features(corpus, emb, id, &mut f);
                let p = self.score(&f);
                let w = if y > 0.5 { pos_weight } else { 1.0 };
                let d = w * (p - y);
                self.w.zero_grad();
                let emb_dim = self.dim - crate::features::BOW_BUCKETS - 1;
                for i in 0..self.dim {
                    let l2 = if i < emb_dim {
                        self.cfg.l2
                    } else {
                        self.cfg.l2_bow
                    };
                    self.w.g[i] = d * f[i] + l2 * self.w.w[i];
                }
                self.step += 1;
                self.w.adam_step(self.cfg.lr, self.step);
            }
        }
    }

    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32 {
        let mut f = vec![0.0f32; self.dim];
        logreg_features(corpus, emb, id, &mut f);
        self.score(&f)
    }

    fn predict_all(&self, corpus: &Corpus, emb: &Embeddings, out: &mut Vec<f32>) {
        out.clear();
        let mut f = vec![0.0f32; self.dim];
        for id in 0..corpus.len() as u32 {
            logreg_features(corpus, emb, id, &mut f);
            out.push(self.score(&f));
        }
    }

    fn predict_batch(&self, corpus: &Corpus, emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        // Same buffer-reuse fast path as `predict_all`: one feature
        // allocation per batch instead of per sentence.
        let mut f = vec![0.0f32; self.dim];
        for &id in ids {
            logreg_features(corpus, emb, id, &mut f);
            out.push(self.score(&f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn toy() -> (Corpus, Embeddings) {
        let mut texts = Vec::new();
        for i in 0..50 {
            texts.push(format!("take the shuttle to terminal {}", i % 9));
            texts.push(format!("the pasta with sauce number {}", i % 9));
        }
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 12,
                ..Default::default()
            },
        );
        (c, e)
    }

    #[test]
    fn separates_toy_task() {
        let (c, e) = toy();
        let pos: Vec<u32> = (0..100).filter(|i| i % 2 == 0).collect();
        let neg: Vec<u32> = (0..100).filter(|i| i % 2 == 1).collect();
        let mut lr = LogReg::new(&e, LogRegConfig::default(), 7);
        lr.fit(&c, &e, &pos[..25], &neg[..25]);
        let acc: usize = pos[25..]
            .iter()
            .map(|&i| (lr.predict(&c, &e, i) > 0.5) as usize)
            .chain(
                neg[25..]
                    .iter()
                    .map(|&i| (lr.predict(&c, &e, i) <= 0.5) as usize),
            )
            .sum();
        assert!(acc >= 45, "accuracy {acc}/50");
    }

    #[test]
    fn untrained_predicts_half() {
        let (c, e) = toy();
        let lr = LogReg::new(&e, LogRegConfig::default(), 7);
        assert!((lr.predict(&c, &e, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn refit_resets_state() {
        let (c, e) = toy();
        let mut a = LogReg::new(&e, LogRegConfig::default(), 3);
        let mut b = LogReg::new(&e, LogRegConfig::default(), 3);
        // a: fit twice on same data; b: fit once. Final models must agree.
        a.fit(&c, &e, &[0, 2], &[1, 3]);
        a.fit(&c, &e, &[0, 2], &[1, 3]);
        b.fit(&c, &e, &[0, 2], &[1, 3]);
        for id in 0..6u32 {
            let (pa, pb) = (a.predict(&c, &e, id), b.predict(&c, &e, id));
            assert!((pa - pb).abs() < 1e-5, "{pa} vs {pb}");
        }
    }

    #[test]
    fn predict_all_fast_path_agrees() {
        let (c, e) = toy();
        let mut lr = LogReg::new(&e, LogRegConfig::default(), 9);
        lr.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut all = Vec::new();
        lr.predict_all(&c, &e, &mut all);
        for id in (0..c.len() as u32).step_by(17) {
            assert_eq!(all[id as usize], lr.predict(&c, &e, id));
        }
    }
}

//! Logistic regression over mean-embedding + hashed bag-of-words features.
//!
//! The fast alternative to the Kim CNN: same [`TextClassifier`] contract,
//! orders of magnitude cheaper to retrain. Used by experiments that sweep
//! many pipeline configurations, and as the comparison point in the
//! classifier-quality ablation.
//!
//! Every prediction path routes through [`FeatureBlock`] scoring — blocks
//! of [`BLOCK_ROWS`] sentences materialized into one contiguous arena and
//! scored by the shared kernels — so per-id, batched, sharded and threaded
//! execution are bit-identical by construction (there is only one scoring
//! arithmetic to diverge from).
//!
//! Training supports warm starts ([`LogRegConfig::warm_start`]): because
//! `fit` is a pure function of `(pos, neg, seed, cfg)` — the RNG is
//! reseeded and the parameters re-zeroed on entry — a refit on the exact
//! training set the model already holds is skipped outright, and across
//! *different* training sets the warm path reuses the per-sentence feature
//! arena (features depend only on the corpus and embeddings, which are
//! fixed for a classifier instance) and resets the Adam state in place
//! instead of reallocating. None of this changes a single bit of the
//! trained weights relative to the cold path, which is kept as the
//! reference for the equivalence proof.

#![allow(clippy::needless_range_loop)] // index math mirrors the tensor strides

use crate::adam::{sigmoid, Param};
use crate::block::{FeatureBlock, BLOCK_ROWS};
use crate::features::{logreg_dim, logreg_features, BOW_BUCKETS};
use crate::kernels::dot_f32;
use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Hyper-parameters for [`LogReg`].
#[derive(Clone, Debug, PartialEq)]
pub struct LogRegConfig {
    pub epochs: usize,
    pub lr: f32,
    /// L2 on the dense (mean-embedding) block.
    pub l2: f32,
    /// L2 on the hashed bag-of-words block. Kept much stronger than `l2`:
    /// the BoW block can memorize the exact surface of the training
    /// positives, which would zero out the embedding pathway Darwin needs
    /// for semantic generalization (paper §3, "bus" → "public transport").
    pub l2_bow: f32,
    /// Keep training state (feature arena, Adam allocations) across fits
    /// and skip refits on an unchanged training set. Bit-identical to the
    /// cold path; `false` keeps the from-scratch reference alive.
    pub warm_start: bool,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 12,
            lr: 0.05,
            l2: 1e-4,
            l2_bow: 6e-3,
            warm_start: true,
        }
    }
}

/// Dense per-sentence feature rows cached across fits (warm starts only).
/// Valid because features are a pure function of `(corpus, emb, id)` and a
/// classifier instance always sees one corpus and one embedding table.
#[derive(Default)]
struct FeatureArena {
    slots: HashMap<u32, usize>,
    store: Vec<f32>,
}

impl FeatureArena {
    fn ensure(&mut self, corpus: &Corpus, emb: &Embeddings, id: u32, dim: usize) {
        if self.slots.contains_key(&id) {
            return;
        }
        let slot = self.slots.len();
        self.store.resize((slot + 1) * dim, 0.0);
        logreg_features(
            corpus,
            emb,
            id,
            &mut self.store[slot * dim..(slot + 1) * dim],
        );
        self.slots.insert(id, slot);
    }

    fn row(&self, id: u32, dim: usize) -> &[f32] {
        let slot = self.slots[&id];
        &self.store[slot * dim..(slot + 1) * dim]
    }
}

/// Binary logistic regression trained with Adam.
pub struct LogReg {
    cfg: LogRegConfig,
    w: Param,
    dim: usize,
    seed: u64,
    step: u32,
    arena: FeatureArena,
    /// The `(pos, neg)` of the last completed fit — the warm-start skip
    /// compares exactly (no hashing), so a skipped refit is provably the
    /// fit it replaces.
    last_data: Option<(Vec<u32>, Vec<u32>)>,
}

impl LogReg {
    pub fn new(emb: &Embeddings, cfg: LogRegConfig, seed: u64) -> LogReg {
        let dim = logreg_dim(emb);
        LogReg {
            cfg,
            w: Param::zeros(dim),
            dim,
            seed,
            step: 0,
            arena: FeatureArena::default(),
            last_data: None,
        }
    }

    /// Score a block of materialized ids, appending to `out` in id order.
    fn score_block(
        &self,
        block: &mut FeatureBlock,
        corpus: &Corpus,
        emb: &Embeddings,
        ids: &[u32],
        out: &mut Vec<f32>,
    ) {
        for chunk in ids.chunks(BLOCK_ROWS) {
            block.fill(corpus, emb, chunk);
            block.score_into(&self.w.w, out);
        }
    }
}

impl TextClassifier for LogReg {
    fn fit(&mut self, corpus: &Corpus, emb: &Embeddings, pos: &[u32], neg: &[u32]) {
        let warm = self.cfg.warm_start;
        if warm {
            if let Some((lp, ln)) = &self.last_data {
                if lp.as_slice() == pos && ln.as_slice() == neg {
                    return; // fit is pure in (pos, neg): nothing would change
                }
            }
            self.w.reset_zeros();
        } else {
            self.w = Param::zeros(self.dim);
            self.arena = FeatureArena::default();
        }
        self.step = 0;
        let mut data: Vec<(u32, f32)> = pos
            .iter()
            .map(|&i| (i, 1.0))
            .chain(neg.iter().map(|&i| (i, 0.0)))
            .collect();
        if warm {
            self.last_data = Some((pos.to_vec(), neg.to_vec()));
        }
        if data.is_empty() {
            return;
        }
        if warm {
            for &(id, _) in &data {
                self.arena.ensure(corpus, emb, id, self.dim);
            }
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x10C);
        let mut scratch = vec![0.0f32; self.dim];
        // Class-balanced loss: Darwin trains on few positives against many
        // sampled negatives; without re-weighting, predicted probabilities
        // collapse below the 0.5 benefit threshold of UniversalSearch.
        let pos_weight = if pos.is_empty() || neg.is_empty() {
            1.0
        } else {
            (neg.len() as f32 / pos.len() as f32).clamp(0.25, 2.0)
        };
        let dim = self.dim;
        let emb_dim = dim - BOW_BUCKETS - 1;
        let cfg = self.cfg.clone();
        let (w, arena) = (&mut self.w, &self.arena);
        let mut step = self.step;
        for _ in 0..cfg.epochs {
            data.shuffle(&mut rng);
            for &(id, y) in &data {
                // Warm and cold feed the *same values* through the same
                // arithmetic; only where the features live differs.
                let f: &[f32] = if warm {
                    arena.row(id, dim)
                } else {
                    logreg_features(corpus, emb, id, &mut scratch);
                    &scratch
                };
                let p = sigmoid(dot_f32(&w.w, f));
                let cw = if y > 0.5 { pos_weight } else { 1.0 };
                let d = cw * (p - y);
                for i in 0..dim {
                    let l2 = if i < emb_dim { cfg.l2 } else { cfg.l2_bow };
                    w.g[i] = d * f[i] + l2 * w.w[i];
                }
                step += 1;
                w.adam_step(cfg.lr, step);
            }
        }
        self.step = step;
    }

    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32 {
        let mut block = FeatureBlock::new(emb.dim());
        let mut out = Vec::with_capacity(1);
        self.score_block(&mut block, corpus, emb, &[id], &mut out);
        out[0]
    }

    fn predict_all(&self, corpus: &Corpus, emb: &Embeddings, out: &mut Vec<f32>) {
        out.clear();
        let ids: Vec<u32> = (0..corpus.len() as u32).collect();
        let mut block = FeatureBlock::new(emb.dim());
        self.score_block(&mut block, corpus, emb, &ids, out);
    }

    fn predict_batch(&self, corpus: &Corpus, emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        let mut block = FeatureBlock::new(emb.dim());
        self.score_block(&mut block, corpus, emb, ids, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn toy() -> (Corpus, Embeddings) {
        let mut texts = Vec::new();
        for i in 0..50 {
            texts.push(format!("take the shuttle to terminal {}", i % 9));
            texts.push(format!("the pasta with sauce number {}", i % 9));
        }
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 12,
                ..Default::default()
            },
        );
        (c, e)
    }

    #[test]
    fn separates_toy_task() {
        let (c, e) = toy();
        let pos: Vec<u32> = (0..100).filter(|i| i % 2 == 0).collect();
        let neg: Vec<u32> = (0..100).filter(|i| i % 2 == 1).collect();
        let mut lr = LogReg::new(&e, LogRegConfig::default(), 7);
        lr.fit(&c, &e, &pos[..25], &neg[..25]);
        let acc: usize = pos[25..]
            .iter()
            .map(|&i| (lr.predict(&c, &e, i) > 0.5) as usize)
            .chain(
                neg[25..]
                    .iter()
                    .map(|&i| (lr.predict(&c, &e, i) <= 0.5) as usize),
            )
            .sum();
        assert!(acc >= 45, "accuracy {acc}/50");
    }

    #[test]
    fn untrained_predicts_half() {
        let (c, e) = toy();
        let lr = LogReg::new(&e, LogRegConfig::default(), 7);
        assert!((lr.predict(&c, &e, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn refit_resets_state() {
        let (c, e) = toy();
        let mut a = LogReg::new(&e, LogRegConfig::default(), 3);
        let mut b = LogReg::new(&e, LogRegConfig::default(), 3);
        // a: fit twice on same data; b: fit once. Final models must agree.
        a.fit(&c, &e, &[0, 2], &[1, 3]);
        a.fit(&c, &e, &[0, 2], &[1, 3]);
        b.fit(&c, &e, &[0, 2], &[1, 3]);
        for id in 0..6u32 {
            let (pa, pb) = (a.predict(&c, &e, id), b.predict(&c, &e, id));
            assert!((pa - pb).abs() < 1e-5, "{pa} vs {pb}");
        }
    }

    /// Warm-start is a buffer-reuse strategy, never an arithmetic change:
    /// a warm model must track a cold model bit for bit through a sequence
    /// of growing (and occasionally repeated) training sets.
    #[test]
    fn warm_start_tracks_cold_start_bit_for_bit() {
        let (c, e) = toy();
        let cold_cfg = LogRegConfig {
            warm_start: false,
            ..Default::default()
        };
        let mut warm = LogReg::new(&e, LogRegConfig::default(), 5);
        let mut cold = LogReg::new(&e, cold_cfg, 5);
        let sets: [(&[u32], &[u32]); 4] = [
            (&[0, 2], &[1, 3]),
            (&[0, 2, 4, 6], &[1, 3, 5]),
            (&[0, 2, 4, 6], &[1, 3, 5]), // repeat: warm skips, cold refits
            (&[0, 2, 4, 6, 8, 10], &[1, 3, 5, 7, 9]),
        ];
        for (round, (pos, neg)) in sets.iter().enumerate() {
            warm.fit(&c, &e, pos, neg);
            cold.fit(&c, &e, pos, neg);
            for id in (0..c.len() as u32).step_by(13) {
                let (pw, pc) = (warm.predict(&c, &e, id), cold.predict(&c, &e, id));
                assert_eq!(
                    pw.to_bits(),
                    pc.to_bits(),
                    "round {round} id {id}: warm {pw} vs cold {pc}"
                );
            }
        }
    }

    #[test]
    fn predict_all_fast_path_agrees() {
        let (c, e) = toy();
        let mut lr = LogReg::new(&e, LogRegConfig::default(), 9);
        lr.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut all = Vec::new();
        lr.predict_all(&c, &e, &mut all);
        for id in (0..c.len() as u32).step_by(17) {
            assert_eq!(all[id as usize], lr.predict(&c, &e, id));
        }
        // And the batch path, across a block boundary ordering.
        let ids: Vec<u32> = (0..c.len() as u32).rev().collect();
        let mut batch = Vec::new();
        lr.predict_batch(&c, &e, &ids, &mut batch);
        for (&id, &p) in ids.iter().zip(&batch) {
            assert_eq!(p, all[id as usize]);
        }
    }
}

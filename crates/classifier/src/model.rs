//! The classifier abstraction used by the pipeline.

use crate::cnn::{CnnConfig, KimCnn};
use crate::logreg::{LogReg, LogRegConfig};
use darwin_text::{Corpus, Embeddings};

/// A binary short-text classifier ("Any short text classifier would be
/// ideal for this task", paper §3.3 footnote). `Sync` because prediction
/// is `&self` and the sharded [`crate::ScoreCache`] fans shard batches out
/// across threads against one shared classifier.
pub trait TextClassifier: Send + Sync {
    /// Train from scratch on positive ids vs. negative ids.
    fn fit(&mut self, corpus: &Corpus, emb: &Embeddings, pos: &[u32], neg: &[u32]);

    /// P(positive) for one sentence.
    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32;

    /// P(positive) for every sentence, in id order.
    fn predict_all(&self, corpus: &Corpus, emb: &Embeddings, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..corpus.len() as u32).map(|id| self.predict(corpus, emb, id)));
    }

    /// P(positive) for each id in `ids`, appended to `out` in `ids` order.
    /// This is the unit of work of the sharded [`crate::ScoreCache`]: one
    /// call per shard, concatenated in shard order, must reproduce
    /// [`TextClassifier::predict_all`] bit for bit — implementations that
    /// override either method must keep per-id scores identical across all
    /// three entry points.
    fn predict_batch(&self, corpus: &Corpus, emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        out.extend(ids.iter().map(|&id| self.predict(corpus, emb, id)));
    }

    /// Notification that `texts` were appended to the corpus, which now
    /// holds `new_len` sentences. Local classifiers are stateless with
    /// respect to corpus size — every `fit`/`predict` call receives the
    /// corpus and embeddings as arguments — so the default is a no-op.
    /// Classifiers that *mirror* the corpus elsewhere (a wire classifier
    /// ships it to a worker at connect) override this to forward the
    /// growth.
    fn corpus_appended(&mut self, _texts: &[String], _new_len: usize) {}
}

/// Which classifier the pipeline should train (paper default: the Kim CNN;
/// logistic regression is the fast ablation).
#[derive(Clone, Debug, PartialEq)]
pub enum ClassifierKind {
    Cnn(CnnConfig),
    LogReg(LogRegConfig),
}

impl ClassifierKind {
    /// Default CNN matching the paper's architecture description.
    pub fn cnn() -> ClassifierKind {
        ClassifierKind::Cnn(CnnConfig::default())
    }

    /// CNN with an explicit number of training epochs (Figure 14 sweeps this).
    pub fn cnn_with_epochs(epochs: usize) -> ClassifierKind {
        ClassifierKind::Cnn(CnnConfig {
            epochs,
            ..Default::default()
        })
    }

    pub fn logreg() -> ClassifierKind {
        ClassifierKind::LogReg(LogRegConfig::default())
    }

    /// Set the warm-start knob of the underlying config (bit-identical to
    /// cold starts; `false` selects the from-scratch reference path).
    pub fn with_warm_start(mut self, warm: bool) -> ClassifierKind {
        match &mut self {
            ClassifierKind::Cnn(cfg) => cfg.warm_start = warm,
            ClassifierKind::LogReg(cfg) => cfg.warm_start = warm,
        }
        self
    }

    /// Instantiate an untrained classifier.
    pub fn build(&self, emb: &Embeddings, seed: u64) -> Box<dyn TextClassifier> {
        match self {
            ClassifierKind::Cnn(cfg) => Box::new(KimCnn::new(emb.dim(), cfg.clone(), seed)),
            ClassifierKind::LogReg(cfg) => Box::new(LogReg::new(emb, cfg.clone(), seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    /// Both classifier kinds separate an easy synthetic task.
    #[test]
    fn kinds_build_and_learn() {
        let mut texts: Vec<String> = Vec::new();
        for i in 0..40 {
            texts.push(format!("the shuttle to the airport leaves at {i}"));
            texts.push(format!("order a pizza with {i} toppings"));
        }
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let pos: Vec<u32> = (0..80).filter(|i| i % 2 == 0).collect();
        let neg: Vec<u32> = (0..80).filter(|i| i % 2 == 1).collect();
        for kind in [ClassifierKind::cnn_with_epochs(6), ClassifierKind::logreg()] {
            let mut clf = kind.build(&e, 42);
            clf.fit(&c, &e, &pos[..20], &neg[..20]);
            // Held-out accuracy well above chance.
            let mut correct = 0;
            for &id in pos[20..].iter() {
                if clf.predict(&c, &e, id) > 0.5 {
                    correct += 1;
                }
            }
            for &id in neg[20..].iter() {
                if clf.predict(&c, &e, id) <= 0.5 {
                    correct += 1;
                }
            }
            assert!(correct >= 32, "{kind:?}: {correct}/40 correct");
        }
    }

    #[test]
    fn predict_all_matches_predict() {
        let c = Corpus::from_texts(["a b c", "d e f", "a d"]);
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut all = Vec::new();
        clf.predict_all(&c, &e, &mut all);
        assert_eq!(all.len(), 3);
        for id in 0..3u32 {
            assert_eq!(all[id as usize], clf.predict(&c, &e, id));
        }
    }
}

//! Text classifiers for Darwin's benefit scoring (paper §3.3, §4.1).
//!
//! Darwin estimates `p_s` — the probability that sentence `s` is positive —
//! by training a classifier on the positives discovered so far against
//! randomly sampled negatives. The paper uses the CNN of Kim (2014): stacked
//! word-embedding vectors, convolutions of several widths, max-over-time
//! pooling and two fully-connected layers. [`cnn::KimCnn`] implements that
//! architecture from scratch (no external ML dependency), trained with
//! [`adam::Param`] (Adam). [`logreg::LogReg`] is a cheaper alternative over
//! mean-embedding + hashed bag-of-words features, useful where the paper's
//! experiments do not depend on CNN-specific behaviour.
//!
//! [`scorer::ScoreCache`] implements the incremental re-scoring optimization
//! of §4.5 (only re-score sentences that previously scored above 0.3; score
//! everything every third round).

pub mod adam;
pub mod block;
pub mod cnn;
pub mod features;
pub mod kernels;
pub mod logreg;
pub mod model;
pub mod scorer;

pub use block::{EmbedBlock, FeatureBlock, BLOCK_ROWS};
pub use cnn::{CnnConfig, KimCnn};
pub use logreg::{LogReg, LogRegConfig};
pub use model::{ClassifierKind, TextClassifier};
pub use scorer::{ScoreCache, ScoreImage};

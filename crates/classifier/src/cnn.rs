//! The Kim (2014) sentence-classification CNN, from scratch.
//!
//! Architecture (paper §4.1): the input is the stacked word-embedding matrix
//! of the sentence; convolution filters of several widths slide over it;
//! each filter's activations are max-pooled over time; the pooled feature
//! vector passes through two fully-connected layers ("a 3-layer
//! convolutional neural network followed by two fully connected layers").
//! Embeddings are fixed (provided by `darwin-text`); only the filters and
//! dense layers train, via Adam on binary cross-entropy.
//!
//! The convolution and dense inner loops run on the shared
//! [`crate::kernels`] — one fixed-reduction dot product for every entry
//! point, so per-id, batched, sharded and threaded prediction are
//! bit-identical by construction. Training supports warm starts
//! ([`CnnConfig::warm_start`]): `fit` is a pure function of
//! `(pos, neg, seed, cfg)` (parameters and RNG are re-derived on entry),
//! so a refit on an unchanged training set is skipped, and across
//! different sets the warm path reuses the cached per-sentence embedding
//! matrices — bit-identical to the cold reference path.

#![allow(clippy::needless_range_loop)] // index math mirrors the tensor strides

use crate::adam::{bce, sigmoid, Param};
use crate::block::{EmbedBlock, BLOCK_ROWS};
use crate::features::embedding_matrix;
use crate::kernels::affine_f32;
use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Hyper-parameters for [`KimCnn`].
#[derive(Clone, Debug, PartialEq)]
pub struct CnnConfig {
    /// Convolution widths (token windows).
    pub widths: Vec<usize>,
    /// Filters per width.
    pub filters: usize,
    /// Hidden units in the first fully-connected layer.
    pub hidden: usize,
    /// Maximum sentence length (longer sentences are truncated).
    pub max_len: usize,
    /// Training epochs (Figure 14 sweeps 4..12; more epochs overfit).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// Keep training state (embedding-matrix arena) across fits and skip
    /// refits on an unchanged training set. Bit-identical to the cold
    /// path; `false` keeps the from-scratch reference alive.
    pub warm_start: bool,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            widths: vec![2, 3, 4],
            filters: 12,
            hidden: 24,
            max_len: 32,
            epochs: 8,
            lr: 0.01,
            batch: 16,
            warm_start: true,
        }
    }
}

/// Per-sentence stacked embedding matrices cached across fits (warm starts
/// only). Valid because the matrix is a pure function of
/// `(corpus, emb, id, max_len)` and a classifier instance always sees one
/// corpus and one embedding table.
#[derive(Default)]
struct XArena {
    slots: HashMap<u32, usize>,
    store: Vec<f32>,
    lens: Vec<usize>,
}

impl XArena {
    fn ensure(&mut self, corpus: &Corpus, emb: &Embeddings, id: u32, max_len: usize) {
        if self.slots.contains_key(&id) {
            return;
        }
        let width = max_len * emb.dim();
        let slot = self.slots.len();
        self.store.resize((slot + 1) * width, 0.0);
        let n = embedding_matrix(
            corpus,
            emb,
            id,
            max_len,
            &mut self.store[slot * width..(slot + 1) * width],
        );
        self.lens.push(n);
        self.slots.insert(id, slot);
    }

    fn row(&self, id: u32, width: usize) -> (&[f32], usize) {
        let slot = self.slots[&id];
        (
            &self.store[slot * width..(slot + 1) * width],
            self.lens[slot],
        )
    }
}

/// The trained model. All tensors are flat `Vec<f32>` with explicit strides.
pub struct KimCnn {
    cfg: CnnConfig,
    dim: usize,
    /// One weight tensor per width: `filters × (width·dim)`.
    conv_w: Vec<Param>,
    conv_b: Vec<Param>,
    /// `hidden × total_filters`.
    fc1_w: Param,
    fc1_b: Param,
    /// `1 × hidden`.
    fc2_w: Param,
    fc2_b: Param,
    seed: u64,
    step: u32,
    arena: XArena,
    /// The `(pos, neg)` of the last completed fit (exact compare, see
    /// `LogReg::last_data`).
    last_data: Option<(Vec<u32>, Vec<u32>)>,
}

/// Forward-pass scratch space, reused across samples. The input matrix is
/// passed to [`KimCnn::forward_x`] explicitly (it may live in the warm
/// arena or in a caller buffer).
struct Scratch {
    feat: Vec<f32>,     // total_filters
    argmax: Vec<usize>, // total_filters — pooling winners
    h: Vec<f32>,        // hidden (post-ReLU)
    hpre: Vec<f32>,     // hidden (pre-ReLU)
}

impl KimCnn {
    pub fn new(dim: usize, cfg: CnnConfig, seed: u64) -> KimCnn {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        let total = cfg.widths.len() * cfg.filters;
        let conv_w = cfg
            .widths
            .iter()
            .map(|&w| {
                let fan_in = (w * dim) as f32;
                Param::uniform(cfg.filters * w * dim, (6.0 / fan_in).sqrt(), &mut rng)
            })
            .collect();
        let conv_b = cfg
            .widths
            .iter()
            .map(|_| Param::zeros(cfg.filters))
            .collect();
        let fc1_w = Param::uniform(cfg.hidden * total, (6.0 / total as f32).sqrt(), &mut rng);
        let fc1_b = Param::zeros(cfg.hidden);
        let fc2_w = Param::uniform(cfg.hidden, (6.0 / cfg.hidden as f32).sqrt(), &mut rng);
        let fc2_b = Param::zeros(1);
        KimCnn {
            cfg,
            dim,
            conv_w,
            conv_b,
            fc1_w,
            fc1_b,
            fc2_w,
            fc2_b,
            seed,
            step: 0,
            arena: XArena::default(),
            last_data: None,
        }
    }

    pub fn config(&self) -> &CnnConfig {
        &self.cfg
    }

    fn total_filters(&self) -> usize {
        self.cfg.widths.len() * self.cfg.filters
    }

    fn scratch(&self) -> Scratch {
        Scratch {
            feat: vec![0.0; self.total_filters()],
            argmax: vec![0; self.total_filters()],
            h: vec![0.0; self.cfg.hidden],
            hpre: vec![0.0; self.cfg.hidden],
        }
    }

    fn x_buffer(&self) -> Vec<f32> {
        vec![0.0; self.cfg.max_len * self.dim]
    }

    /// Re-derive the freshly-initialized parameters of
    /// `KimCnn::new(dim, cfg, seed)` — pure, so every reset is identical —
    /// leaving the warm-start fields untouched.
    fn reset_params(&mut self) {
        let fresh = KimCnn::new(self.dim, self.cfg.clone(), self.seed);
        self.conv_w = fresh.conv_w;
        self.conv_b = fresh.conv_b;
        self.fc1_w = fresh.fc1_w;
        self.fc1_b = fresh.fc1_b;
        self.fc2_w = fresh.fc2_w;
        self.fc2_b = fresh.fc2_b;
        self.step = 0;
    }

    /// Forward pass over a stacked embedding matrix `x`
    /// (`max_len × dim`, zero-padded) with `n` effective tokens; fills the
    /// scratch and returns P(positive).
    fn forward_x(&self, x: &[f32], n: usize, s: &mut Scratch) -> f32 {
        let dim = self.dim;
        // Convolution + max-over-time pooling.
        for (wi, &width) in self.cfg.widths.iter().enumerate() {
            let wlen = width * dim;
            let positions = if n >= width { n - width + 1 } else { 1 };
            for f in 0..self.cfg.filters {
                let wrow = &self.conv_w[wi].w[f * wlen..(f + 1) * wlen];
                let bias = self.conv_b[wi].w[f];
                let mut best = f32::NEG_INFINITY;
                let mut best_t = 0;
                for t in 0..positions {
                    // Window may run past `n` into zero padding — harmless;
                    // past the end of `x` the kernel's shorter-slice-wins
                    // semantics truncate it.
                    let z = affine_f32(bias, wrow, &x[t * dim..]);
                    if z > best {
                        best = z;
                        best_t = t;
                    }
                }
                let fi = wi * self.cfg.filters + f;
                s.feat[fi] = best.max(0.0); // ReLU after pooling
                s.argmax[fi] = best_t;
            }
        }
        // FC1 (ReLU) + FC2 (sigmoid).
        let total = self.total_filters();
        for hidx in 0..self.cfg.hidden {
            let row = &self.fc1_w.w[hidx * total..(hidx + 1) * total];
            let z = affine_f32(self.fc1_b.w[hidx], row, &s.feat);
            s.hpre[hidx] = z;
            s.h[hidx] = z.max(0.0);
        }
        sigmoid(affine_f32(self.fc2_b.w[0], &self.fc2_w.w, &s.h))
    }

    /// Forward pass that stacks the embedding matrix into `x` first.
    fn forward_into(
        &self,
        corpus: &Corpus,
        emb: &Embeddings,
        id: u32,
        x: &mut [f32],
        s: &mut Scratch,
    ) -> f32 {
        let n = embedding_matrix(corpus, emb, id, self.cfg.max_len, x);
        self.forward_x(x, n, s)
    }

    /// Backward pass for one sample (adds into parameter gradients).
    /// `dz2` is the loss gradient at the output logit — `p - y` for plain
    /// BCE, scaled by the class weight for balanced training. `x` must be
    /// the matrix the forward pass ran on.
    fn backward(&mut self, dz2: f32, x: &[f32], s: &Scratch) {
        let total = self.total_filters();
        // FC2.
        for hidx in 0..self.cfg.hidden {
            self.fc2_w.g[hidx] += dz2 * s.h[hidx];
        }
        self.fc2_b.g[0] += dz2;
        // FC1.
        let mut dfeat = vec![0.0f32; total];
        for hidx in 0..self.cfg.hidden {
            if s.hpre[hidx] <= 0.0 {
                continue;
            }
            let dh = dz2 * self.fc2_w.w[hidx];
            let row = hidx * total;
            for fi in 0..total {
                self.fc1_w.g[row + fi] += dh * s.feat[fi];
                dfeat[fi] += dh * self.fc1_w.w[row + fi];
            }
            self.fc1_b.g[hidx] += dh;
        }
        // Conv, through the pooling argmax and the post-pool ReLU.
        let dim = self.dim;
        for (wi, &width) in self.cfg.widths.iter().enumerate() {
            let wlen = width * dim;
            for f in 0..self.cfg.filters {
                let fi = wi * self.cfg.filters + f;
                if s.feat[fi] <= 0.0 {
                    continue; // ReLU gate closed
                }
                let df = dfeat[fi];
                if df == 0.0 {
                    continue;
                }
                let t = s.argmax[fi];
                let avail = wlen.min(x.len() - t * dim);
                let xwin = &x[t * dim..t * dim + avail];
                let grow = &mut self.conv_w[wi].g[f * wlen..f * wlen + avail];
                for (g, xv) in grow.iter_mut().zip(xwin) {
                    *g += df * xv;
                }
                self.conv_b[wi].g[f] += df;
            }
        }
    }

    fn zero_grads(&mut self) {
        for p in self.conv_w.iter_mut().chain(self.conv_b.iter_mut()) {
            p.zero_grad();
        }
        self.fc1_w.zero_grad();
        self.fc1_b.zero_grad();
        self.fc2_w.zero_grad();
        self.fc2_b.zero_grad();
    }

    fn step_all(&mut self) {
        self.step += 1;
        let (lr, t) = (self.cfg.lr, self.step);
        for p in self.conv_w.iter_mut().chain(self.conv_b.iter_mut()) {
            p.adam_step(lr, t);
        }
        self.fc1_w.adam_step(lr, t);
        self.fc1_b.adam_step(lr, t);
        self.fc2_w.adam_step(lr, t);
        self.fc2_b.adam_step(lr, t);
    }

    /// Mean training BCE over the given examples (diagnostic).
    pub fn loss(&self, corpus: &Corpus, emb: &Embeddings, pos: &[u32], neg: &[u32]) -> f32 {
        let mut s = self.scratch();
        let mut x = self.x_buffer();
        let mut total = 0.0;
        for &id in pos {
            total += bce(self.forward_into(corpus, emb, id, &mut x, &mut s), 1.0);
        }
        for &id in neg {
            total += bce(self.forward_into(corpus, emb, id, &mut x, &mut s), 0.0);
        }
        total / (pos.len() + neg.len()).max(1) as f32
    }
}

impl TextClassifier for KimCnn {
    fn fit(&mut self, corpus: &Corpus, emb: &Embeddings, pos: &[u32], neg: &[u32]) {
        let warm = self.cfg.warm_start;
        if warm {
            if let Some((lp, ln)) = &self.last_data {
                if lp.as_slice() == pos && ln.as_slice() == neg {
                    return; // fit is pure in (pos, neg): nothing would change
                }
            }
        }
        // Re-initialize: each retraining in the pipeline starts fresh on the
        // grown positive set (Algorithm 1 line 10 "train_classifier").
        self.reset_params();
        if !warm {
            self.arena = XArena::default();
            self.last_data = None;
        }
        let mut data: Vec<(u32, f32)> = pos
            .iter()
            .map(|&i| (i, 1.0))
            .chain(neg.iter().map(|&i| (i, 0.0)))
            .collect();
        if warm {
            self.last_data = Some((pos.to_vec(), neg.to_vec()));
        }
        if data.is_empty() {
            return;
        }
        // Move the arena out for the duration of training so its rows can
        // be borrowed across `&mut self` backward calls.
        let mut arena = std::mem::take(&mut self.arena);
        if warm {
            for &(id, _) in &data {
                arena.ensure(corpus, emb, id, self.cfg.max_len);
            }
        }
        let width = self.cfg.max_len * self.dim;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x7EA);
        let mut scratch = self.scratch();
        let mut xbuf = self.x_buffer();
        // Class-balanced loss (see LogReg::fit for the rationale).
        let pos_weight = if pos.is_empty() || neg.is_empty() {
            1.0
        } else {
            (neg.len() as f32 / pos.len() as f32).clamp(0.25, 2.0)
        };
        for _epoch in 0..self.cfg.epochs {
            data.shuffle(&mut rng);
            for batch in data.chunks(self.cfg.batch) {
                self.zero_grads();
                for &(id, y) in batch {
                    // Warm and cold feed the *same matrix values* through
                    // the same arithmetic; only where the matrix lives
                    // differs.
                    let (x, n): (&[f32], usize) = if warm {
                        arena.row(id, width)
                    } else {
                        let n = embedding_matrix(corpus, emb, id, self.cfg.max_len, &mut xbuf);
                        (&xbuf, n)
                    };
                    let p = self.forward_x(x, n, &mut scratch);
                    let w = if y > 0.5 { pos_weight } else { 1.0 };
                    self.backward(w * (p - y), x, &scratch);
                }
                // Average gradient over the batch.
                let inv = 1.0 / batch.len() as f32;
                for p in self.conv_w.iter_mut().chain(self.conv_b.iter_mut()) {
                    p.g.iter_mut().for_each(|g| *g *= inv);
                }
                self.fc1_w.g.iter_mut().for_each(|g| *g *= inv);
                self.fc1_b.g.iter_mut().for_each(|g| *g *= inv);
                self.fc2_w.g.iter_mut().for_each(|g| *g *= inv);
                self.fc2_b.g.iter_mut().for_each(|g| *g *= inv);
                self.step_all();
            }
        }
        if warm {
            self.arena = arena;
        }
    }

    fn predict(&self, corpus: &Corpus, emb: &Embeddings, id: u32) -> f32 {
        let mut s = self.scratch();
        let mut x = self.x_buffer();
        self.forward_into(corpus, emb, id, &mut x, &mut s)
    }

    fn predict_all(&self, corpus: &Corpus, emb: &Embeddings, out: &mut Vec<f32>) {
        out.clear();
        let ids: Vec<u32> = (0..corpus.len() as u32).collect();
        self.predict_batch(corpus, emb, &ids, out);
    }

    fn predict_batch(&self, corpus: &Corpus, emb: &Embeddings, ids: &[u32], out: &mut Vec<f32>) {
        // Blocked execution: one contiguous arena of stacked matrices per
        // BLOCK_ROWS chunk, one scratch for the whole batch. Each arena row
        // holds exactly the values `embedding_matrix` produces, so
        // `forward_x` sees the same inputs as the per-id path.
        let mut s = self.scratch();
        let mut block = EmbedBlock::new(self.cfg.max_len, self.dim);
        out.reserve(ids.len());
        for chunk in ids.chunks(BLOCK_ROWS) {
            block.fill(corpus, emb, self.cfg.max_len, chunk);
            for r in 0..block.rows() {
                let (x, n) = block.row(r);
                out.push(self.forward_x(x, n, &mut s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darwin_text::embed::EmbedConfig;

    fn toy() -> (Corpus, Embeddings, Vec<u32>, Vec<u32>) {
        let mut texts = Vec::new();
        for i in 0..60 {
            texts.push(format!("what is the best way to get to terminal {}", i % 7));
            texts.push(format!(
                "please order {} pizzas with cheese and olives",
                i % 5
            ));
        }
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 12,
                ..Default::default()
            },
        );
        let pos = (0..120).filter(|i| i % 2 == 0).collect();
        let neg = (0..120).filter(|i| i % 2 == 1).collect();
        (c, e, pos, neg)
    }

    #[test]
    fn learns_separable_task() {
        let (c, e, pos, neg) = toy();
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 6,
                ..Default::default()
            },
            3,
        );
        cnn.fit(&c, &e, &pos[..30], &neg[..30]);
        let acc = pos[30..]
            .iter()
            .map(|&i| (cnn.predict(&c, &e, i) > 0.5) as usize)
            .chain(
                neg[30..]
                    .iter()
                    .map(|&i| (cnn.predict(&c, &e, i) <= 0.5) as usize),
            )
            .sum::<usize>();
        assert!(acc >= 54, "accuracy {acc}/60");
    }

    #[test]
    fn training_reduces_loss() {
        let (c, e, pos, neg) = toy();
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 4,
                ..Default::default()
            },
            5,
        );
        let before = cnn.loss(&c, &e, &pos, &neg);
        cnn.fit(&c, &e, &pos, &neg);
        let after = cnn.loss(&c, &e, &pos, &neg);
        assert!(after < before, "loss {before} -> {after}");
        assert!(after.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let (c, e, pos, neg) = toy();
        let mut a = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 2,
                ..Default::default()
            },
            11,
        );
        let mut b = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 2,
                ..Default::default()
            },
            11,
        );
        a.fit(&c, &e, &pos[..10], &neg[..10]);
        b.fit(&c, &e, &pos[..10], &neg[..10]);
        for id in 0..10u32 {
            assert_eq!(a.predict(&c, &e, id), b.predict(&c, &e, id));
        }
    }

    /// Warm-start is a buffer-reuse strategy, never an arithmetic change:
    /// a warm model must track a cold model bit for bit through growing
    /// (and occasionally repeated) training sets.
    #[test]
    fn warm_start_tracks_cold_start_bit_for_bit() {
        let (c, e, pos, neg) = toy();
        let base = CnnConfig {
            epochs: 2,
            ..Default::default()
        };
        let cold_cfg = CnnConfig {
            warm_start: false,
            ..base.clone()
        };
        let mut warm = KimCnn::new(e.dim(), base, 13);
        let mut cold = KimCnn::new(e.dim(), cold_cfg, 13);
        let sets: [(usize, usize); 3] = [(4, 4), (8, 8), (8, 8)];
        for (round, &(np, nn)) in sets.iter().enumerate() {
            warm.fit(&c, &e, &pos[..np], &neg[..nn]);
            cold.fit(&c, &e, &pos[..np], &neg[..nn]);
            for id in (0..c.len() as u32).step_by(11) {
                let (pw, pc) = (warm.predict(&c, &e, id), cold.predict(&c, &e, id));
                assert_eq!(
                    pw.to_bits(),
                    pc.to_bits(),
                    "round {round} id {id}: warm {pw} vs cold {pc}"
                );
            }
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (c, e, pos, neg) = toy();
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 2,
                ..Default::default()
            },
            1,
        );
        cnn.fit(&c, &e, &pos[..5], &neg[..5]);
        for id in 0..c.len() as u32 {
            let p = cnn.predict(&c, &e, id);
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn gradient_check_fc2() {
        // Numeric vs analytic gradient on the final layer for one sample.
        let (c, e, _, _) = toy();
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 1,
                ..Default::default()
            },
            9,
        );
        let mut s = cnn.scratch();
        let mut x = cnn.x_buffer();
        let id = 0u32;
        let y = 1.0;
        let p = cnn.forward_into(&c, &e, id, &mut x, &mut s);
        cnn.zero_grads();
        let xcopy = x.clone();
        cnn.backward(p - y, &xcopy, &s);
        let analytic = cnn.fc2_w.g[0];
        let eps = 1e-3;
        let orig = cnn.fc2_w.w[0];
        cnn.fc2_w.w[0] = orig + eps;
        let lp = bce(cnn.forward_into(&c, &e, id, &mut x, &mut s), y);
        cnn.fc2_w.w[0] = orig - eps;
        let lm = bce(cnn.forward_into(&c, &e, id, &mut x, &mut s), y);
        cnn.fc2_w.w[0] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    /// The batched entry points must reproduce per-id `predict` bit for
    /// bit (the `TextClassifier` contract the sharded score cache leans
    /// on) — including across reused scratch buffers and sentences of
    /// very different lengths.
    #[test]
    fn batched_prediction_is_bit_identical() {
        let c = Corpus::from_texts([
            "hi",
            "the shuttle to the airport now leaves from the main gate",
            "ok",
            "what is the best way to get to the airport from here",
        ]);
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 2,
                ..Default::default()
            },
            6,
        );
        cnn.fit(&c, &e, &[1, 3], &[0, 2]);
        let per_id: Vec<f32> = (0..c.len() as u32)
            .map(|id| cnn.predict(&c, &e, id))
            .collect();
        let mut all = Vec::new();
        cnn.predict_all(&c, &e, &mut all);
        assert_eq!(all, per_id, "predict_all diverged from per-id predict");
        // A long sentence before a short one: stale scratch would leak
        // embeddings into the short sentence's padding.
        let ids = [1u32, 0, 3, 2, 1];
        let mut batch = Vec::new();
        cnn.predict_batch(&c, &e, &ids, &mut batch);
        let expect: Vec<f32> = ids.iter().map(|&id| per_id[id as usize]).collect();
        assert_eq!(batch, expect, "predict_batch diverged from per-id predict");
        // A batch crossing the BLOCK_ROWS boundary: the arena refill
        // between chunks must not perturb anything.
        let many: Vec<u32> = (0..crate::block::BLOCK_ROWS as u32 + 8)
            .map(|i| ids[i as usize % ids.len()])
            .collect();
        let mut big = Vec::new();
        cnn.predict_batch(&c, &e, &many, &mut big);
        let expect_big: Vec<f32> = many.iter().map(|&id| per_id[id as usize]).collect();
        assert_eq!(big, expect_big, "block-boundary batch diverged");
    }

    #[test]
    fn handles_empty_training_set() {
        let (c, e, _, _) = toy();
        let mut cnn = KimCnn::new(e.dim(), CnnConfig::default(), 2);
        cnn.fit(&c, &e, &[], &[]);
        assert!(cnn.predict(&c, &e, 0).is_finite());
    }

    #[test]
    fn short_sentence_shorter_than_widest_filter() {
        let c = Corpus::from_texts(["hi", "the shuttle to the airport now leaves"]);
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let mut cnn = KimCnn::new(
            e.dim(),
            CnnConfig {
                epochs: 2,
                ..Default::default()
            },
            4,
        );
        cnn.fit(&c, &e, &[0], &[1]);
        assert!(cnn.predict(&c, &e, 0).is_finite());
    }
}

//! Chunked f32 kernels shared by every scoring path.
//!
//! The repo's signature invariant — every fast path replays the reference
//! trace bit for bit — makes "equivalent" arithmetic a trap: two dot
//! products that merely compute the same real number can differ in their
//! f32 rounding. These kernels resolve that by construction: there is
//! exactly one implementation of each inner loop, with a *fixed* lane
//! count and reduction order, and the scalar per-id paths, the blocked
//! batch paths and the training loops all call it. Batching, sharding and
//! threading then change only *which buffers* feed the kernel, never the
//! arithmetic.
//!
//! The shapes are chosen for auto-vectorization, not explicit SIMD: eight
//! independent accumulators over `chunks_exact(8)` give the optimizer a
//! branch-free, alias-free body it lowers to packed multiply-adds on any
//! target, while the fixed pairwise combine at the end keeps the result
//! deterministic across targets and optimization levels (f32 addition is
//! evaluated exactly as written; Rust never licenses reassociation).

/// Lane width of [`dot_f32`]. Part of the numeric contract: changing it
/// changes the reduction tree and therefore every score in the system.
pub const DOT_LANES: usize = 8;

/// Dot product over the common prefix of `a` and `b` (shorter slice
/// wins), with a fixed 8-lane accumulation and pairwise combine.
///
/// NaN and infinity propagate as IEEE-754 dictates; empty input gives
/// `0.0`.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; DOT_LANES];
    let mut ca = a.chunks_exact(DOT_LANES);
    let mut cb = b.chunks_exact(DOT_LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for lane in 0..DOT_LANES {
            acc[lane] += xa[lane] * xb[lane];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    // Fixed pairwise reduction: ((0+1)+(2+3)) + ((4+5)+(6+7)), then tail.
    let lo = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let hi = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    (lo + hi) + tail
}

/// `bias + dot_f32(w, x)` — the convolution-window / dense-layer kernel.
/// One definition so the CNN's forward pass is the same arithmetic
/// whether it runs per id, batched, or inside training.
#[inline]
pub fn affine_f32(bias: f32, w: &[f32], x: &[f32]) -> f32 {
    bias + dot_f32(w, x)
}

/// Sparse dot: `Σ w[idx[k]] * val[k]`, accumulated sequentially in `k`
/// order. The bag-of-words half of the blocked logistic-regression score;
/// `idx` entries must be in bounds of `w`.
#[inline]
pub fn sparse_dot_f32(w: &[f32], idx: &[u32], val: &[f32]) -> f32 {
    let mut z = 0.0f32;
    for (&i, &v) in idx.iter().zip(val) {
        z += w[i as usize] * v;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_dot(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum::<f64>()
    }

    #[test]
    fn matches_reference_within_f32_tolerance() {
        let a: Vec<f32> = (0..131)
            .map(|i| ((i * 37) % 19) as f32 * 0.25 - 2.0)
            .collect();
        let b: Vec<f32> = (0..131)
            .map(|i| ((i * 11) % 23) as f32 * 0.5 - 5.0)
            .collect();
        let got = dot_f32(&a, &b) as f64;
        let want = reference_dot(&a, &b);
        assert!(
            (got - want).abs() < 1e-3 * (1.0 + want.abs()),
            "{got} vs {want}"
        );
    }

    #[test]
    fn deterministic_across_calls_and_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
            assert_eq!(dot_f32(&a, &b), dot_f32(&a, &b), "n={n}");
        }
    }

    #[test]
    fn empty_and_mismatched_lengths() {
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(dot_f32(&[1.0, 2.0], &[]), 0.0);
        // Shorter slice wins: only the common prefix contributes.
        assert_eq!(dot_f32(&[2.0, 3.0, 100.0], &[4.0, 5.0]), 23.0);
        assert_eq!(dot_f32(&[2.0, 3.0], &[4.0, 5.0, 100.0]), 23.0);
    }

    #[test]
    fn nan_and_infinity_propagate() {
        let mut a = vec![1.0f32; 20];
        let b = vec![1.0f32; 20];
        a[13] = f32::NAN;
        assert!(dot_f32(&a, &b).is_nan());
        a[13] = f32::INFINITY;
        assert_eq!(dot_f32(&a, &b), f32::INFINITY);
    }

    #[test]
    fn affine_adds_bias() {
        assert_eq!(affine_f32(1.5, &[2.0], &[3.0]), 7.5);
        assert_eq!(affine_f32(0.25, &[], &[]), 0.25);
    }

    #[test]
    fn sparse_dot_accumulates_in_index_order() {
        let w = [0.0f32, 10.0, 20.0, 30.0];
        assert_eq!(sparse_dot_f32(&w, &[3, 1], &[2.0, 0.5]), 65.0);
        assert_eq!(sparse_dot_f32(&w, &[], &[]), 0.0);
    }

    #[test]
    fn sparse_dot_propagates_nan() {
        let w = [1.0f32, f32::NAN];
        assert!(sparse_dot_f32(&w, &[0, 1], &[1.0, 1.0]).is_nan());
    }
}

//! Incremental corpus re-scoring (the §4.5 optimization).
//!
//! The pipeline's bottleneck is "the time taken by the classifier to make a
//! prediction for all instances in the corpus". The paper's optimization:
//! after the first full pass, only re-score sentences whose previous score
//! exceeded a confidence threshold (default 0.3), and re-score everything
//! every third round. This cut the professions runtime from 2h45m to 65m.

use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};

/// Cached per-sentence positive probabilities with selective refresh.
pub struct ScoreCache {
    scores: Vec<f32>,
    round: u32,
    /// Only sentences scoring at least this are refreshed every round.
    pub threshold: f32,
    /// Full refresh period (every `full_every`-th round scores everything).
    pub full_every: u32,
    /// When false, every refresh is a full pass (ablation switch).
    pub incremental: bool,
    refreshed_last_round: usize,
}

impl ScoreCache {
    pub fn new(n_sentences: usize) -> ScoreCache {
        ScoreCache {
            scores: vec![0.5; n_sentences],
            round: 0,
            threshold: 0.3,
            full_every: 3,
            incremental: true,
            refreshed_last_round: 0,
        }
    }

    /// Disable the optimization (used by the efficiency ablation).
    pub fn full_only(n_sentences: usize) -> ScoreCache {
        ScoreCache { incremental: false, ..ScoreCache::new(n_sentences) }
    }

    /// Current scores, one per sentence.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    pub fn score(&self, id: u32) -> f32 {
        self.scores[id as usize]
    }

    /// Number of predictions computed by the most recent refresh
    /// (diagnostic for the efficiency experiment).
    pub fn last_refresh_size(&self) -> usize {
        self.refreshed_last_round
    }

    /// Refresh scores from a (re)trained classifier.
    pub fn refresh(&mut self, clf: &dyn TextClassifier, corpus: &Corpus, emb: &Embeddings) {
        self.round += 1;
        let full =
            !self.incremental || self.round == 1 || self.round.is_multiple_of(self.full_every.max(1));
        if full {
            let mut out = Vec::with_capacity(self.scores.len());
            clf.predict_all(corpus, emb, &mut out);
            self.scores = out;
            self.refreshed_last_round = self.scores.len();
        } else {
            let mut n = 0;
            for id in 0..self.scores.len() {
                if self.scores[id] >= self.threshold {
                    self.scores[id] = clf.predict(corpus, emb, id as u32);
                    n += 1;
                }
            }
            self.refreshed_last_round = n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClassifierKind;
    use darwin_text::embed::EmbedConfig;

    fn setup() -> (Corpus, Embeddings) {
        let texts: Vec<String> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    format!("shuttle to the airport number {i}")
                } else {
                    format!("pizza with cheese number {i}")
                }
            })
            .collect();
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(&c, &EmbedConfig { dim: 8, ..Default::default() });
        (c, e)
    }

    #[test]
    fn first_refresh_is_full() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2], &[1, 3]);
        let mut cache = ScoreCache::new(c.len());
        cache.refresh(clf.as_ref(), &c, &e);
        assert_eq!(cache.last_refresh_size(), c.len());
        assert_eq!(cache.scores().len(), c.len());
    }

    #[test]
    fn incremental_rounds_touch_fewer_sentences() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4, 6], &[1, 3, 5, 7]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 100; // avoid a scheduled full pass in this test
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        let full_n = cache.last_refresh_size();
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        assert!(cache.last_refresh_size() <= full_n);
        // Negatives (scoring < 0.3 after training) were skipped.
        assert!(cache.last_refresh_size() < c.len(), "some sentences skipped");
    }

    #[test]
    fn scheduled_full_pass_happens() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 3;
        cache.refresh(clf.as_ref(), &c, &e); // round 1 full
        cache.refresh(clf.as_ref(), &c, &e); // round 2 incremental
        cache.refresh(clf.as_ref(), &c, &e); // round 3 full (3 % 3 == 0)
        assert_eq!(cache.last_refresh_size(), c.len());
    }

    #[test]
    fn full_only_mode_always_scores_everything() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::full_only(c.len());
        for _ in 0..4 {
            cache.refresh(clf.as_ref(), &c, &e);
            assert_eq!(cache.last_refresh_size(), c.len());
        }
    }
}

//! Incremental corpus re-scoring (the §4.5 optimization).
//!
//! The pipeline's bottleneck is "the time taken by the classifier to make a
//! prediction for all instances in the corpus". The paper's optimization:
//! after the first full pass, only re-score sentences whose previous score
//! exceeded a confidence threshold (default 0.3), and re-score everything
//! every third round. This cut the professions runtime from 2h45m to 65m.

use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};

/// Cached per-sentence positive probabilities with selective refresh.
///
/// Downstream consumers that maintain score-derived aggregates (the
/// incremental benefit engine) follow the cache through two signals after
/// each [`ScoreCache::refresh`]:
///
/// * [`ScoreCache::last_refresh_was_full`] — a full pass means "most
///   scores moved; rebuild your aggregates from scratch".
/// * [`ScoreCache::last_changes`] — after an *incremental* pass, the exact
///   `(id, old, new)` journal of scores that moved, so aggregates can be
///   patched by delta instead of rebuilt.
///
/// [`ScoreCache::epoch`] counts the full passes — a staleness check for
/// consumers that sync less often than every refresh.
pub struct ScoreCache {
    scores: Vec<f32>,
    round: u32,
    /// Only sentences scoring at least this are refreshed every round.
    pub threshold: f32,
    /// Full refresh period (every `full_every`-th round scores everything).
    pub full_every: u32,
    /// When false, every refresh is a full pass (ablation switch).
    pub incremental: bool,
    refreshed_last_round: usize,
    epoch: u64,
    last_was_full: bool,
    changes: Vec<(u32, f32, f32)>,
}

impl ScoreCache {
    pub fn new(n_sentences: usize) -> ScoreCache {
        ScoreCache {
            scores: vec![0.5; n_sentences],
            round: 0,
            threshold: 0.3,
            full_every: 3,
            incremental: true,
            refreshed_last_round: 0,
            epoch: 0,
            last_was_full: false,
            changes: Vec::new(),
        }
    }

    /// Disable the optimization (used by the efficiency ablation).
    pub fn full_only(n_sentences: usize) -> ScoreCache {
        ScoreCache {
            incremental: false,
            ..ScoreCache::new(n_sentences)
        }
    }

    /// Current scores, one per sentence.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    pub fn score(&self, id: u32) -> f32 {
        self.scores[id as usize]
    }

    /// Number of predictions computed by the most recent refresh
    /// (diagnostic for the efficiency experiment).
    pub fn last_refresh_size(&self) -> usize {
        self.refreshed_last_round
    }

    /// Retrain epoch: how many full passes have happened. Aggregates keyed
    /// to an older epoch must be rebuilt, not patched.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the most recent [`ScoreCache::refresh`] was a full pass.
    pub fn last_refresh_was_full(&self) -> bool {
        self.last_was_full
    }

    /// The `(id, old, new)` score movements of the most recent
    /// *incremental* refresh (empty after a full pass — everything may have
    /// moved; consult [`ScoreCache::epoch`] instead).
    pub fn last_changes(&self) -> &[(u32, f32, f32)] {
        &self.changes
    }

    /// Refresh scores from a (re)trained classifier.
    pub fn refresh(&mut self, clf: &dyn TextClassifier, corpus: &Corpus, emb: &Embeddings) {
        self.round += 1;
        let full = !self.incremental
            || self.round == 1
            || self.round.is_multiple_of(self.full_every.max(1));
        self.changes.clear();
        self.last_was_full = full;
        if full {
            let mut out = Vec::with_capacity(self.scores.len());
            clf.predict_all(corpus, emb, &mut out);
            self.scores = out;
            self.refreshed_last_round = self.scores.len();
            self.epoch += 1;
        } else {
            let mut n = 0;
            for id in 0..self.scores.len() {
                if self.scores[id] >= self.threshold {
                    let new = clf.predict(corpus, emb, id as u32);
                    let old = self.scores[id];
                    if new != old {
                        self.changes.push((id as u32, old, new));
                        self.scores[id] = new;
                    }
                    n += 1;
                }
            }
            self.refreshed_last_round = n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClassifierKind;
    use darwin_text::embed::EmbedConfig;

    fn setup() -> (Corpus, Embeddings) {
        let texts: Vec<String> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    format!("shuttle to the airport number {i}")
                } else {
                    format!("pizza with cheese number {i}")
                }
            })
            .collect();
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        (c, e)
    }

    #[test]
    fn first_refresh_is_full() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2], &[1, 3]);
        let mut cache = ScoreCache::new(c.len());
        cache.refresh(clf.as_ref(), &c, &e);
        assert_eq!(cache.last_refresh_size(), c.len());
        assert_eq!(cache.scores().len(), c.len());
    }

    #[test]
    fn incremental_rounds_touch_fewer_sentences() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4, 6], &[1, 3, 5, 7]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 100; // avoid a scheduled full pass in this test
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        let full_n = cache.last_refresh_size();
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        assert!(cache.last_refresh_size() <= full_n);
        // Negatives (scoring < 0.3 after training) were skipped.
        assert!(
            cache.last_refresh_size() < c.len(),
            "some sentences skipped"
        );
    }

    #[test]
    fn scheduled_full_pass_happens() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 3;
        cache.refresh(clf.as_ref(), &c, &e); // round 1 full
        cache.refresh(clf.as_ref(), &c, &e); // round 2 incremental
        cache.refresh(clf.as_ref(), &c, &e); // round 3 full (3 % 3 == 0)
        assert_eq!(cache.last_refresh_size(), c.len());
    }

    #[test]
    fn epoch_bumps_only_on_full_passes() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2], &[1, 3]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 3;
        assert_eq!(cache.epoch(), 0);
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        assert_eq!(cache.epoch(), 1);
        assert!(cache.last_refresh_was_full());
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        assert_eq!(cache.epoch(), 1);
        assert!(!cache.last_refresh_was_full());
        cache.refresh(clf.as_ref(), &c, &e); // round 3: full
        assert_eq!(cache.epoch(), 2);
        assert!(
            cache.last_changes().is_empty(),
            "journal cleared on full pass"
        );
    }

    #[test]
    fn change_journal_reflects_score_movements() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 100;
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        let before = cache.scores().to_vec();
        // Retrain with different data so scores actually move.
        clf.fit(&c, &e, &[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]);
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        let after = cache.scores();
        for &(id, old, new) in cache.last_changes() {
            assert_eq!(before[id as usize], old);
            assert_eq!(after[id as usize], new);
            assert_ne!(old, new);
        }
        // Every moved score is in the journal.
        for id in 0..c.len() {
            if before[id] != after[id] {
                assert!(
                    cache
                        .last_changes()
                        .iter()
                        .any(|&(i, _, _)| i as usize == id),
                    "moved score {id} missing from journal"
                );
            }
        }
    }

    #[test]
    fn full_only_mode_always_scores_everything() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::full_only(c.len());
        for _ in 0..4 {
            cache.refresh(clf.as_ref(), &c, &e);
            assert_eq!(cache.last_refresh_size(), c.len());
        }
    }
}

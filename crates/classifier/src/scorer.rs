//! Incremental corpus re-scoring (the §4.5 optimization), sharded.
//!
//! The pipeline's bottleneck is "the time taken by the classifier to make a
//! prediction for all instances in the corpus". The paper's optimization:
//! after the first full pass, only re-score sentences whose previous score
//! exceeded a confidence threshold (default 0.3), and re-score everything
//! every third round. This cut the professions runtime from 2h45m to 65m.
//!
//! On top of that, every prediction pass here is *sharded*: the id space is
//! split into `S` contiguous ranges and each shard's sentences are scored
//! as one [`TextClassifier::predict_batch`] call — shard-parallel when
//! `threads > 1`, and batch-at-a-time even when sequential (the batch entry
//! point lets classifiers reuse feature buffers instead of paying a fresh
//! allocation per sentence, the cost of the old one-sentence-at-a-time
//! loop). Shards are an execution detail only: per-shard outputs are
//! concatenated in shard order and per-id predictions are pure, so scores
//! are bit-identical for every shard and thread count.

use crate::model::TextClassifier;
use darwin_text::{Corpus, Embeddings};
use rayon::prelude::*;

/// Slice of a sorted id list restricted to `[lo, hi)` (the classifier crate
/// sits below `darwin-index`, so it carries its own two-binary-search
/// helper rather than depending on `ShardMap`).
fn id_slice(ids: &[u32], lo: u32, hi: u32) -> &[u32] {
    let a = ids.partition_point(|&s| s < lo);
    let b = ids.partition_point(|&s| s < hi);
    &ids[a..b]
}

/// Cached per-sentence positive probabilities with selective refresh.
///
/// Downstream consumers that maintain score-derived aggregates (the
/// incremental benefit engine) follow the cache through two signals after
/// each [`ScoreCache::refresh`]:
///
/// * [`ScoreCache::last_refresh_was_full`] — a full pass means "most
///   scores moved; rebuild your aggregates from scratch".
/// * [`ScoreCache::last_changes`] — after an *incremental* pass, the exact
///   `(id, old, new)` journal of scores that moved, so aggregates can be
///   patched by delta instead of rebuilt.
///
/// [`ScoreCache::epoch`] counts the full passes — a staleness check for
/// consumers that sync less often than every refresh.
///
/// (One engine cache that does *not* consume this journal, by design: the
/// incremental candidate frontier. Candidate generation ranks by overlap
/// with the positive set alone, so its invalidation tracks `P`, never
/// scores.)
///
/// The change journal is sorted by id, and shards are contiguous id
/// ranges, so a shard's journal is a contiguous run of the flat journal —
/// [`ScoreCache::changes_in`] hands a shard coordinator its slice with two
/// binary searches.
pub struct ScoreCache {
    scores: Vec<f32>,
    round: u32,
    /// Only sentences scoring at least this are refreshed every round.
    pub threshold: f32,
    /// Full refresh period (every `full_every`-th round scores everything).
    pub full_every: u32,
    /// When false, every refresh is a full pass (ablation switch).
    pub incremental: bool,
    shards: usize,
    threads: usize,
    /// Coordinator-supplied shard ranges (`[lo, hi)` per shard). When set,
    /// these — not a locally re-derived `⌈n/S⌉` split — bound every
    /// sharded prediction pass, so the cache can never drift from the
    /// `darwin_index::ShardMap` that owns the partition (this crate sits
    /// below darwin-index and cannot name the type, so the ranges are
    /// threaded in as plain pairs).
    ranges: Option<Vec<(u32, u32)>>,
    refreshed_last_round: usize,
    epoch: u64,
    last_was_full: bool,
    changes: Vec<(u32, f32, f32)>,
}

/// A plain-data image of a [`ScoreCache`]'s refresh state — see
/// [`ScoreCache::export`]. Session snapshots serialize this through the
/// wire codec; `f32` fields round-trip bit for bit there (NaN payloads
/// included), which is why the image stores raw scores rather than any
/// derived form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreImage {
    pub scores: Vec<f32>,
    pub round: u32,
    pub threshold: f32,
    pub full_every: u32,
    pub incremental: bool,
    pub refreshed_last_round: u64,
    pub epoch: u64,
    pub last_was_full: bool,
    pub changes: Vec<(u32, f32, f32)>,
}

impl ScoreCache {
    pub fn new(n_sentences: usize) -> ScoreCache {
        ScoreCache {
            scores: vec![0.5; n_sentences],
            round: 0,
            threshold: 0.3,
            full_every: 3,
            incremental: true,
            shards: 1,
            threads: 1,
            ranges: None,
            refreshed_last_round: 0,
            epoch: 0,
            last_was_full: false,
            changes: Vec::new(),
        }
    }

    /// Disable the optimization (used by the efficiency ablation).
    pub fn full_only(n_sentences: usize) -> ScoreCache {
        ScoreCache {
            incremental: false,
            ..ScoreCache::new(n_sentences)
        }
    }

    /// Split prediction passes into `shards` contiguous id ranges (1 =
    /// unsharded). Scores are bit-identical for every shard count.
    pub fn with_shards(mut self, shards: usize) -> ScoreCache {
        self.shards = shards.max(1);
        self
    }

    /// Worker threads for shard-parallel prediction passes (1 =
    /// sequential). Scores are bit-identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> ScoreCache {
        self.threads = threads.max(1);
        self
    }

    /// Adopt the coordinator's shard partition: `ranges[s]` is the
    /// `[lo, hi)` id range shard `s` owns. The ranges must tile `0..n`
    /// contiguously (the `ShardMap` contract). Once set, sharded
    /// prediction passes split on these bounds instead of re-deriving a
    /// `⌈n/S⌉` split locally — the split that silently disagreed with a
    /// mid-run grown `ShardMap`. Per-id predictions are pure, so *any*
    /// contiguous tiling yields bit-identical scores; threading the real
    /// one in makes journal slices and prediction bounds one partition.
    pub fn set_shard_ranges(&mut self, ranges: Vec<(u32, u32)>) {
        let n = self.scores.len() as u32;
        assert!(!ranges.is_empty(), "at least one shard range required");
        let mut cursor = 0u32;
        for &(lo, hi) in &ranges {
            assert!(
                lo == cursor && hi >= lo,
                "ranges must tile 0..n contiguously"
            );
            cursor = hi;
        }
        assert_eq!(cursor, n, "ranges must cover exactly 0..{n}");
        self.shards = ranges.len();
        self.ranges = Some(ranges);
    }

    /// Builder form of [`ScoreCache::set_shard_ranges`].
    pub fn with_shard_ranges(mut self, ranges: Vec<(u32, u32)>) -> ScoreCache {
        self.set_shard_ranges(ranges);
        self
    }

    /// Grow the id space by `added` sentences appended to the corpus.
    ///
    /// New ids enter at the 0.5 neutral prior — the same epistemic state
    /// every id starts a run in — and are journaled as `(id, 0.5, 0.5)`
    /// movements so shard coordinators replaying [`ScoreCache::changes_in`]
    /// see them (the journal stays id-sorted because appended ids are the
    /// largest). They sit above the refresh threshold, so the next
    /// incremental refresh scores them with the live classifier. Any
    /// coordinator-supplied shard ranges are dropped: the grown partition
    /// must be re-threaded from the grown `ShardMap`.
    pub fn append(&mut self, added: usize) {
        let old_n = self.scores.len();
        self.scores.resize(old_n + added, 0.5);
        for id in old_n..old_n + added {
            self.changes.push((id as u32, 0.5, 0.5));
        }
        self.ranges = None;
    }

    /// Configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Current scores, one per sentence.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    pub fn score(&self, id: u32) -> f32 {
        self.scores[id as usize]
    }

    /// Number of predictions computed by the most recent refresh
    /// (diagnostic for the efficiency experiment).
    pub fn last_refresh_size(&self) -> usize {
        self.refreshed_last_round
    }

    /// Retrain epoch: how many full passes have happened. Aggregates keyed
    /// to an older epoch must be rebuilt, not patched.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the most recent [`ScoreCache::refresh`] was a full pass.
    pub fn last_refresh_was_full(&self) -> bool {
        self.last_was_full
    }

    /// The `(id, old, new)` score movements of the most recent
    /// *incremental* refresh (empty after a full pass — everything may have
    /// moved; consult [`ScoreCache::epoch`] instead). Sorted by id.
    pub fn last_changes(&self) -> &[(u32, f32, f32)] {
        &self.changes
    }

    /// The journal restricted to ids in `[lo, hi)` — a shard's view of
    /// [`ScoreCache::last_changes`]. Contiguous because the journal is
    /// id-sorted and shards own contiguous ranges.
    pub fn changes_in(&self, lo: u32, hi: u32) -> &[(u32, f32, f32)] {
        let a = self.changes.partition_point(|&(id, _, _)| id < lo);
        let b = self.changes.partition_point(|&(id, _, _)| id < hi);
        &self.changes[a..b]
    }

    /// Shard boundaries over the id space. Coordinator-supplied ranges
    /// ([`ScoreCache::set_shard_ranges`]) when present; otherwise the
    /// fresh-map `⌈n / S⌉` split — identical to `darwin_index::ShardMap`
    /// at construction, but only the threaded ranges track a map grown
    /// mid-epoch, so coordinators must thread theirs in.
    fn shard_bounds(&self) -> Vec<(u32, u32)> {
        if let Some(ranges) = &self.ranges {
            return ranges.clone();
        }
        let n = self.scores.len() as u32;
        let chunk = n.div_ceil(self.shards as u32).max(1);
        (0..self.shards as u32)
            .map(|s| {
                let lo = (s * chunk).min(n);
                let hi = if s + 1 == self.shards as u32 {
                    n
                } else {
                    ((s + 1) * chunk).min(n)
                };
                (lo, hi)
            })
            .collect()
    }

    /// Predict the (sorted) `ids`, one `predict_batch` call per shard —
    /// shard-parallel when configured. Output is in `ids` order.
    ///
    /// Effective parallelism is `min(shards, threads)` when sharded and
    /// `threads` when unsharded: per-id predictions are pure, so *any*
    /// contiguous partition of `ids` scored independently and concatenated
    /// in order reproduces the single-batch pass bit for bit — shards need
    /// not be the unit of parallelism.
    fn predict_ids(
        &self,
        clf: &dyn TextClassifier,
        corpus: &Corpus,
        emb: &Embeddings,
        ids: &[u32],
    ) -> Vec<f32> {
        if self.shards <= 1 {
            if self.threads > 1 && !ids.is_empty() {
                let chunk = ids.len().div_ceil(self.threads);
                let parts: Vec<Vec<f32>> = ids
                    .par_chunks(chunk)
                    .map(|chunk_ids| {
                        let mut out = Vec::with_capacity(chunk_ids.len());
                        clf.predict_batch(corpus, emb, chunk_ids, &mut out);
                        out
                    })
                    .collect();
                let mut out = Vec::with_capacity(ids.len());
                for part in parts {
                    out.extend_from_slice(&part);
                }
                return out;
            }
            let mut out = Vec::with_capacity(ids.len());
            clf.predict_batch(corpus, emb, ids, &mut out);
            return out;
        }
        let slices: Vec<&[u32]> = self
            .shard_bounds()
            .into_iter()
            .map(|(lo, hi)| id_slice(ids, lo, hi))
            .collect();
        let parts: Vec<Vec<f32>> = if self.threads > 1 {
            // One chunk of shards per configured worker: the rayon shim
            // (and real rayon) won't use more threads than there are
            // chunks, so `threads` is an effective upper bound.
            let chunk = slices.len().div_ceil(self.threads);
            slices
                .par_chunks(chunk)
                .map(|group| {
                    group
                        .iter()
                        .map(|ids| {
                            let mut out = Vec::with_capacity(ids.len());
                            clf.predict_batch(corpus, emb, ids, &mut out);
                            out
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            slices
                .iter()
                .map(|ids| {
                    let mut out = Vec::with_capacity(ids.len());
                    clf.predict_batch(corpus, emb, ids, &mut out);
                    out
                })
                .collect()
        };
        // Shards are contiguous and `ids` is sorted, so concatenating in
        // shard order restores `ids` order exactly.
        let mut out = Vec::with_capacity(ids.len());
        for part in parts {
            out.extend_from_slice(&part);
        }
        out
    }

    /// Capture the cache's refresh state as a plain-data image for
    /// session snapshots. Execution knobs (`shards`, `threads`) are
    /// deliberately absent: they are pure performance parameters, and a
    /// resumed session may legally run with different ones.
    pub fn export(&self) -> ScoreImage {
        ScoreImage {
            scores: self.scores.clone(),
            round: self.round,
            threshold: self.threshold,
            full_every: self.full_every,
            incremental: self.incremental,
            refreshed_last_round: self.refreshed_last_round as u64,
            epoch: self.epoch,
            last_was_full: self.last_was_full,
            changes: self.changes.clone(),
        }
    }

    /// Rebuild a cache from an exported image (sequential, unsharded —
    /// apply [`ScoreCache::with_shards`] / [`ScoreCache::with_threads`]
    /// for the new deployment). The refresh cadence continues exactly
    /// where the exporter stopped: `round` drives the full-vs-incremental
    /// decision, so a resumed run schedules its next full pass on the same
    /// retrain as the uninterrupted one.
    pub fn import(img: &ScoreImage) -> ScoreCache {
        ScoreCache {
            scores: img.scores.clone(),
            round: img.round,
            threshold: img.threshold,
            full_every: img.full_every,
            incremental: img.incremental,
            shards: 1,
            threads: 1,
            ranges: None,
            refreshed_last_round: img.refreshed_last_round as usize,
            epoch: img.epoch,
            last_was_full: img.last_was_full,
            changes: img.changes.clone(),
        }
    }

    /// Refresh scores from a (re)trained classifier.
    pub fn refresh(&mut self, clf: &dyn TextClassifier, corpus: &Corpus, emb: &Embeddings) {
        self.round += 1;
        let full = !self.incremental
            || self.round == 1
            || self.round.is_multiple_of(self.full_every.max(1));
        self.changes.clear();
        self.last_was_full = full;
        if full {
            if self.shards <= 1 && self.threads <= 1 {
                let mut out = Vec::with_capacity(self.scores.len());
                clf.predict_all(corpus, emb, &mut out);
                self.scores = out;
            } else {
                let all: Vec<u32> = (0..self.scores.len() as u32).collect();
                self.scores = self.predict_ids(clf, corpus, emb, &all);
            }
            self.refreshed_last_round = self.scores.len();
            self.epoch += 1;
        } else {
            // §4.5 selective refresh, batched: collect the above-threshold
            // ids first, then score them through the same shard-parallel
            // batch path as a full pass — instead of interleaving the scan
            // with one `predict` call per sentence.
            let ids: Vec<u32> = (0..self.scores.len() as u32)
                .filter(|&id| self.scores[id as usize] >= self.threshold)
                .collect();
            let fresh = self.predict_ids(clf, corpus, emb, &ids);
            for (&id, &new) in ids.iter().zip(&fresh) {
                let old = self.scores[id as usize];
                if new != old {
                    self.changes.push((id, old, new));
                    self.scores[id as usize] = new;
                }
            }
            self.refreshed_last_round = ids.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClassifierKind;
    use darwin_text::embed::EmbedConfig;

    fn setup() -> (Corpus, Embeddings) {
        let texts: Vec<String> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    format!("shuttle to the airport number {i}")
                } else {
                    format!("pizza with cheese number {i}")
                }
            })
            .collect();
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        (c, e)
    }

    #[test]
    fn first_refresh_is_full() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2], &[1, 3]);
        let mut cache = ScoreCache::new(c.len());
        cache.refresh(clf.as_ref(), &c, &e);
        assert_eq!(cache.last_refresh_size(), c.len());
        assert_eq!(cache.scores().len(), c.len());
    }

    #[test]
    fn incremental_rounds_touch_fewer_sentences() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4, 6], &[1, 3, 5, 7]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 100; // avoid a scheduled full pass in this test
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        let full_n = cache.last_refresh_size();
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        assert!(cache.last_refresh_size() <= full_n);
        // Negatives (scoring < 0.3 after training) were skipped.
        assert!(
            cache.last_refresh_size() < c.len(),
            "some sentences skipped"
        );
    }

    #[test]
    fn scheduled_full_pass_happens() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 3;
        cache.refresh(clf.as_ref(), &c, &e); // round 1 full
        cache.refresh(clf.as_ref(), &c, &e); // round 2 incremental
        cache.refresh(clf.as_ref(), &c, &e); // round 3 full (3 % 3 == 0)
        assert_eq!(cache.last_refresh_size(), c.len());
    }

    #[test]
    fn epoch_bumps_only_on_full_passes() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2], &[1, 3]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 3;
        assert_eq!(cache.epoch(), 0);
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        assert_eq!(cache.epoch(), 1);
        assert!(cache.last_refresh_was_full());
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        assert_eq!(cache.epoch(), 1);
        assert!(!cache.last_refresh_was_full());
        cache.refresh(clf.as_ref(), &c, &e); // round 3: full
        assert_eq!(cache.epoch(), 2);
        assert!(
            cache.last_changes().is_empty(),
            "journal cleared on full pass"
        );
    }

    #[test]
    fn change_journal_reflects_score_movements() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut cache = ScoreCache::new(c.len());
        cache.full_every = 100;
        cache.refresh(clf.as_ref(), &c, &e); // round 1: full
        let before = cache.scores().to_vec();
        // Retrain with different data so scores actually move.
        clf.fit(&c, &e, &[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]);
        cache.refresh(clf.as_ref(), &c, &e); // round 2: incremental
        let after = cache.scores();
        for &(id, old, new) in cache.last_changes() {
            assert_eq!(before[id as usize], old);
            assert_eq!(after[id as usize], new);
            assert_ne!(old, new);
        }
        // Every moved score is in the journal.
        for id in 0..c.len() {
            if before[id] != after[id] {
                assert!(
                    cache
                        .last_changes()
                        .iter()
                        .any(|&(i, _, _)| i as usize == id),
                    "moved score {id} missing from journal"
                );
            }
        }
    }

    /// Shard and thread count are execution details: every configuration
    /// must produce bit-identical scores and journals through full and
    /// incremental rounds alike.
    #[test]
    fn sharded_refresh_is_bit_identical_to_unsharded() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut reference = ScoreCache::new(c.len());
        reference.full_every = 100;
        reference.refresh(clf.as_ref(), &c, &e); // full
        clf.fit(&c, &e, &[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]);
        reference.refresh(clf.as_ref(), &c, &e); // incremental

        for shards in [1usize, 2, 3, 7, 64] {
            for threads in [1usize, 4] {
                let mut clf = ClassifierKind::logreg().build(&e, 1);
                clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
                let mut cache = ScoreCache::new(c.len())
                    .with_shards(shards)
                    .with_threads(threads);
                cache.full_every = 100;
                cache.refresh(clf.as_ref(), &c, &e);
                clf.fit(&c, &e, &[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]);
                cache.refresh(clf.as_ref(), &c, &e);
                assert_eq!(
                    cache.scores(),
                    reference.scores(),
                    "S={shards} T={threads}: scores diverged"
                );
                assert_eq!(
                    cache.last_changes(),
                    reference.last_changes(),
                    "S={shards} T={threads}: journals diverged"
                );
                assert_eq!(cache.last_refresh_size(), reference.last_refresh_size());
            }
        }
    }

    #[test]
    fn changes_in_tiles_the_journal() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut cache = ScoreCache::new(c.len()).with_shards(4);
        cache.full_every = 100;
        cache.refresh(clf.as_ref(), &c, &e);
        clf.fit(&c, &e, &[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]);
        cache.refresh(clf.as_ref(), &c, &e);
        assert!(
            !cache.last_changes().is_empty(),
            "retraining must move some scores"
        );
        // Journal is sorted by id, and range views tile it exactly.
        let ids: Vec<u32> = cache.last_changes().iter().map(|&(id, _, _)| id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "journal sorted");
        let n = c.len() as u32;
        let mut rebuilt = Vec::new();
        for lo in (0..n).step_by(10) {
            rebuilt.extend_from_slice(cache.changes_in(lo, (lo + 10).min(n)));
        }
        assert_eq!(rebuilt, cache.last_changes());
        assert_eq!(cache.changes_in(0, n), cache.last_changes());
    }

    /// An exported-then-imported cache must continue the refresh cadence
    /// exactly: same full-pass schedule, bit-identical scores and
    /// journals as the never-interrupted cache.
    #[test]
    fn export_import_continues_the_refresh_cadence() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        let sets: [(&[u32], &[u32]); 4] = [
            (&[0, 2], &[1, 3]),
            (&[0, 2, 4], &[1, 3, 5]),
            (&[0, 2, 4, 6], &[1, 3, 5, 7]),
            (&[0, 2, 4, 6, 8], &[1, 3, 5, 7, 9]),
        ];
        let mut reference = ScoreCache::new(c.len());
        reference.full_every = 3;
        let mut live = ScoreCache::new(c.len());
        live.full_every = 3;
        for (pos, neg) in &sets[..2] {
            clf.fit(&c, &e, pos, neg);
            reference.refresh(clf.as_ref(), &c, &e);
            live.refresh(clf.as_ref(), &c, &e);
        }
        let mut resumed = ScoreCache::import(&live.export())
            .with_shards(2)
            .with_threads(2);
        assert_eq!(resumed.epoch(), live.epoch());
        for (pos, neg) in &sets[2..] {
            clf.fit(&c, &e, pos, neg);
            reference.refresh(clf.as_ref(), &c, &e);
            resumed.refresh(clf.as_ref(), &c, &e);
            assert_eq!(
                resumed.last_refresh_was_full(),
                reference.last_refresh_was_full()
            );
            assert_eq!(resumed.scores(), reference.scores());
            assert_eq!(resumed.last_changes(), reference.last_changes());
        }
        assert_eq!(resumed.epoch(), reference.epoch());
    }

    /// Satellite pin: threaded coordinator ranges must drive sharded
    /// prediction and stay bit-identical to the locally-derived split —
    /// including on a *grown* id space, where the epoch-frozen map's
    /// ranges no longer match a fresh `⌈n/S⌉` derivation.
    #[test]
    fn threaded_shard_ranges_agree_on_grown_corpora() {
        let (c, e) = setup();
        let n = c.len() as u32;
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut reference = ScoreCache::new(c.len());
        reference.full_every = 100;
        reference.refresh(clf.as_ref(), &c, &e);

        // Epoch-frozen grown partition: a 4-shard map built when the
        // corpus was 12 sentences (chunk 3), grown to n — the last shard
        // owns [9, n), which no fresh split of n would produce.
        let grown = vec![(0u32, 3u32), (3, 6), (6, 9), (9, n)];
        let mut cache = ScoreCache::new(c.len())
            .with_threads(2)
            .with_shard_ranges(grown);
        cache.full_every = 100;
        cache.refresh(clf.as_ref(), &c, &e);
        assert_eq!(cache.scores(), reference.scores());
        assert_eq!(cache.shards(), 4);
    }

    #[test]
    #[should_panic(expected = "tile 0..n")]
    fn shard_ranges_that_do_not_tile_are_rejected() {
        let _ = ScoreCache::new(10).with_shard_ranges(vec![(0, 4), (5, 10)]);
    }

    /// Appended ids enter at the 0.5 prior, are journaled, sit above the
    /// refresh threshold, and the next incremental refresh scores them.
    #[test]
    fn append_grows_scores_and_journals_new_ids() {
        let (c, e) = setup();
        // The pre-append view: same first 37 sentences (same syms — the
        // vocab interns in sentence order), 3 yet to arrive.
        let texts: Vec<String> = (0..37)
            .map(|i| {
                if i % 2 == 0 {
                    format!("shuttle to the airport number {i}")
                } else {
                    format!("pizza with cheese number {i}")
                }
            })
            .collect();
        let c_small = Corpus::from_texts(texts.iter());
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0, 2, 4], &[1, 3, 5]);
        let mut cache = ScoreCache::new(c_small.len());
        cache.full_every = 100;
        cache.refresh(clf.as_ref(), &c_small, &e);
        let journal_before = cache.last_changes().len();
        cache.append(3);
        assert_eq!(cache.scores().len(), c.len());
        assert!(cache.scores()[c.len() - 3..].iter().all(|&s| s == 0.5));
        // New ids journaled, id-sorted, visible through changes_in.
        let tail = &cache.last_changes()[journal_before..];
        assert_eq!(tail.len(), 3);
        let ids: Vec<u32> = cache.last_changes().iter().map(|&(id, _, _)| id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "journal stays sorted");
        assert_eq!(
            cache.changes_in(c.len() as u32 - 3, c.len() as u32).len(),
            3
        );
        // The next incremental refresh re-scores them (0.5 >= threshold).
        cache.refresh(clf.as_ref(), &c, &e);
        assert!(!cache.last_refresh_was_full());
        for id in c.len() - 3..c.len() {
            let mut want = Vec::new();
            clf.predict_batch(&c, &e, &[id as u32], &mut want);
            assert_eq!(cache.score(id as u32), want[0], "appended id {id} scored");
        }
    }

    #[test]
    fn full_only_mode_always_scores_everything() {
        let (c, e) = setup();
        let mut clf = ClassifierKind::logreg().build(&e, 1);
        clf.fit(&c, &e, &[0], &[1]);
        let mut cache = ScoreCache::full_only(c.len());
        for _ in 0..4 {
            cache.refresh(clf.as_ref(), &c, &e);
            assert_eq!(cache.last_refresh_size(), c.len());
        }
    }
}

//! Blocked feature materialization for the refresh hot path.
//!
//! The old scoring loop re-derived a 4129-dimensional dense feature vector
//! per sentence per pass — a 16 KB zero-fill followed by a dense dot in
//! which all but a handful of bag-of-words lanes were zero. A
//! [`FeatureBlock`] materializes a batch of sentences into one contiguous,
//! reusable allocation split by structure: the dense mean-embedding rows
//! side by side (unit-stride input for [`crate::kernels::dot_f32`]), and
//! the bag-of-words half as a CSR-style sparse block (ascending bucket ids
//! plus accumulated weights per row). Scoring a row then touches
//! `emb_dim + nnz + 1` lanes instead of `logreg_dim`.
//!
//! Bit-exactness argument (the repo's signature invariant): within one
//! sentence every bag-of-words increment adds the *same* constant
//! `w = 1/√len` starting from 0.0, so folding a sorted run of `k` equal
//! buckets by `k` sequential adds reproduces the dense scatter-add's value
//! for that bucket exactly, and a sequential dense dot over the sparse
//! block in bucket order only ever adds `w[b] * 0.0 = ±0.0` terms between
//! the non-zeros — which cannot change a running sum that is `+0.0` or
//! non-zero. The canonical score below is therefore the *definition* of
//! logistic-regression scoring for every path in this crate; scalar,
//! batched, sharded and threaded execution all route through it.

use crate::adam::sigmoid;
use crate::features::{bow_bucket, embedding_matrix, BOW_BUCKETS};
use crate::kernels::{dot_f32, sparse_dot_f32};
use darwin_text::{Corpus, Embeddings};

/// Rows scored per [`FeatureBlock`] refill in the batched prediction
/// paths. Sized so a block (dense rows + sparse triplets) stays well
/// inside L2 for the default 32-dim embeddings.
pub const BLOCK_ROWS: usize = 512;

/// A batch of sentences materialized as dense embedding rows plus a
/// CSR-style sparse bag-of-words block. Reusable: [`FeatureBlock::fill`]
/// clears and refills without releasing capacity.
pub struct FeatureBlock {
    emb_dim: usize,
    rows: usize,
    /// `rows × emb_dim`, the ×4-rescaled mean embeddings.
    dense: Vec<f32>,
    /// Ascending bucket ids per row, concatenated.
    bow_idx: Vec<u32>,
    /// Accumulated 1/√len weights, parallel to `bow_idx`.
    bow_val: Vec<f32>,
    /// `rows + 1` prefix offsets into `bow_idx`/`bow_val`.
    row_off: Vec<usize>,
    /// Per-sentence bucket scratch (sorted in place each row).
    buckets: Vec<u32>,
}

impl FeatureBlock {
    pub fn new(emb_dim: usize) -> FeatureBlock {
        FeatureBlock {
            emb_dim,
            rows: 0,
            dense: Vec::new(),
            bow_idx: Vec::new(),
            bow_val: Vec::new(),
            row_off: vec![0],
            buckets: Vec::new(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialize features for `ids`, replacing the previous contents.
    pub fn fill(&mut self, corpus: &Corpus, emb: &Embeddings, ids: &[u32]) {
        debug_assert_eq!(self.emb_dim, emb.dim());
        let dim = self.emb_dim;
        self.rows = ids.len();
        self.dense.resize(ids.len() * dim, 0.0);
        self.bow_idx.clear();
        self.bow_val.clear();
        self.row_off.clear();
        self.row_off.push(0);
        for (r, &id) in ids.iter().enumerate() {
            let toks = &corpus.sentence(id).tokens;
            let row = &mut self.dense[r * dim..(r + 1) * dim];
            emb.mean_into(toks, row);
            // Same rescale as `logreg_features`: keep the embedding block
            // competitive with the bag-of-words block.
            row.iter_mut().for_each(|x| *x *= 4.0);
            if !toks.is_empty() {
                let w = 1.0 / (toks.len() as f32).sqrt();
                self.buckets.clear();
                self.buckets
                    .extend(toks.iter().map(|&t| bow_bucket(t) as u32));
                self.buckets.sort_unstable();
                // Fold runs of equal buckets by repeated addition of the
                // run's shared weight — the dense scatter-add's exact value.
                let mut i = 0;
                while i < self.buckets.len() {
                    let b = self.buckets[i];
                    let mut val = 0.0f32;
                    while i < self.buckets.len() && self.buckets[i] == b {
                        val += w;
                        i += 1;
                    }
                    self.bow_idx.push(b);
                    self.bow_val.push(val);
                }
            }
            self.row_off.push(self.bow_idx.len());
        }
    }

    /// The canonical logistic-regression score for row `r` under the flat
    /// weight vector `w` (`emb_dim + BOW_BUCKETS + 1` long):
    /// `sigmoid((dense·w_emb + bow·w_bow) + w_bias)`, with the dense half
    /// through [`dot_f32`] and the sparse half in ascending bucket order.
    #[inline]
    pub fn score_row(&self, w: &[f32], r: usize) -> f32 {
        let dim = self.emb_dim;
        debug_assert_eq!(w.len(), dim + BOW_BUCKETS + 1);
        let dense = &self.dense[r * dim..(r + 1) * dim];
        let (lo, hi) = (self.row_off[r], self.row_off[r + 1]);
        let z = dot_f32(&w[..dim], dense)
            + sparse_dot_f32(
                &w[dim..dim + BOW_BUCKETS],
                &self.bow_idx[lo..hi],
                &self.bow_val[lo..hi],
            );
        sigmoid(z + w[dim + BOW_BUCKETS])
    }

    /// Score every row, appending to `out` in row order.
    pub fn score_into(&self, w: &[f32], out: &mut Vec<f32>) {
        out.reserve(self.rows);
        for r in 0..self.rows {
            out.push(self.score_row(w, r));
        }
    }
}

/// A batch of sentences materialized as stacked, zero-padded embedding
/// matrices in one contiguous arena (`rows × max_len·dim` with per-row
/// effective lengths) — the CNN's analogue of [`FeatureBlock`]. The
/// batched prediction paths refill one block per [`BLOCK_ROWS`] chunk
/// instead of restacking into a single matrix buffer per sentence; each
/// row holds exactly the values [`embedding_matrix`] produces, so the
/// forward pass is bit-identical to the per-id path by construction.
pub struct EmbedBlock {
    /// `max_len · dim`, the stride of one stacked matrix.
    width: usize,
    rows: usize,
    /// `rows × width`, zero-padded matrices side by side.
    store: Vec<f32>,
    /// Effective token count per row.
    lens: Vec<usize>,
}

impl EmbedBlock {
    pub fn new(max_len: usize, dim: usize) -> EmbedBlock {
        EmbedBlock {
            width: max_len * dim,
            rows: 0,
            store: Vec::new(),
            lens: Vec::new(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Stack the matrices for `ids`, replacing the previous contents
    /// without releasing capacity. `max_len` must match `new`.
    pub fn fill(&mut self, corpus: &Corpus, emb: &Embeddings, max_len: usize, ids: &[u32]) {
        debug_assert_eq!(self.width, max_len * emb.dim());
        self.rows = ids.len();
        self.store.resize(ids.len() * self.width, 0.0);
        self.lens.clear();
        for (r, &id) in ids.iter().enumerate() {
            // `embedding_matrix` zero-fills its slice first, so reusing a
            // dirty arena is bit-identical to a fresh buffer per sentence.
            let row = &mut self.store[r * self.width..(r + 1) * self.width];
            self.lens
                .push(embedding_matrix(corpus, emb, id, max_len, row));
        }
    }

    /// Row `r`'s stacked matrix and its effective token count.
    #[inline]
    pub fn row(&self, r: usize) -> (&[f32], usize) {
        (
            &self.store[r * self.width..(r + 1) * self.width],
            self.lens[r],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{logreg_dim, logreg_features};
    use darwin_text::embed::EmbedConfig;

    fn setup() -> (Corpus, Embeddings) {
        let mut texts: Vec<String> = (0..30)
            .map(|i| {
                format!(
                    "the shuttle number {} goes to the airport gate {}",
                    i,
                    i % 4
                )
            })
            .collect();
        texts.push(String::new()); // empty sentence
        texts.push("repeat repeat repeat repeat".into()); // bucket collisions
        let c = Corpus::from_texts(texts.iter());
        let e = Embeddings::train(
            &c,
            &EmbedConfig {
                dim: 8,
                ..Default::default()
            },
        );
        (c, e)
    }

    /// The scalar reference: dense features via `logreg_features`, scored
    /// with the same kernel grouping the block uses. The non-trivial claim
    /// under test is that the CSR fold reproduces the dense scatter-add
    /// bit for bit.
    fn scalar_score(c: &Corpus, e: &Embeddings, w: &[f32], id: u32) -> f32 {
        let dim = e.dim();
        let mut f = vec![0.0f32; logreg_dim(e)];
        logreg_features(c, e, id, &mut f);
        let mut bow = 0.0f32;
        for (a, b) in w[dim..dim + BOW_BUCKETS]
            .iter()
            .zip(&f[dim..dim + BOW_BUCKETS])
        {
            bow += a * b;
        }
        let z = dot_f32(&w[..dim], &f[..dim]) + bow;
        sigmoid(z + w[dim + BOW_BUCKETS])
    }

    #[test]
    fn blocked_scoring_matches_scalar_bit_for_bit() {
        let (c, e) = setup();
        let n = logreg_dim(&e);
        // Deterministic, sign-mixed weights (including negatives so the
        // ±0.0 argument in the module docs is actually exercised).
        let w: Vec<f32> = (0..n)
            .map(|i| (((i * 2654435761) % 1000) as f32 / 500.0) - 1.0)
            .collect();
        let ids: Vec<u32> = (0..c.len() as u32).collect();
        let mut block = FeatureBlock::new(e.dim());
        block.fill(&c, &e, &ids);
        let mut out = Vec::new();
        block.score_into(&w, &mut out);
        for (&id, &got) in ids.iter().zip(&out) {
            let want = scalar_score(&c, &e, &w, id);
            assert_eq!(got.to_bits(), want.to_bits(), "id {id}: {got} vs {want}");
        }
    }

    #[test]
    fn refill_reuses_allocation_and_stays_identical() {
        let (c, e) = setup();
        let n = logreg_dim(&e);
        let w: Vec<f32> = (0..n).map(|i| ((i % 7) as f32) * 0.1 - 0.3).collect();
        let mut block = FeatureBlock::new(e.dim());
        block.fill(&c, &e, &[5, 6, 7, 8, 9, 10, 11]);
        let mut first = Vec::new();
        block.score_into(&w, &mut first);
        block.fill(&c, &e, &[0, 1, 2]); // shrink
        block.fill(&c, &e, &[5, 6, 7, 8, 9, 10, 11]); // regrow
        let mut second = Vec::new();
        block.score_into(&w, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn empty_sentence_scores_like_bias_only() {
        let (c, e) = setup();
        let n = logreg_dim(&e);
        let w = vec![0.25f32; n];
        let empty_id = 30u32; // the pushed empty text
        assert!(c.sentence(empty_id).tokens.is_empty());
        let mut block = FeatureBlock::new(e.dim());
        block.fill(&c, &e, &[empty_id]);
        let mut out = Vec::new();
        block.score_into(&w, &mut out);
        assert_eq!(out[0], sigmoid(0.25)); // dense 0, bow empty, bias 0.25
    }

    #[test]
    fn embed_block_rows_match_embedding_matrix() {
        let (c, e) = setup();
        let max_len = 6;
        let ids: Vec<u32> = (0..c.len() as u32).collect();
        let mut block = EmbedBlock::new(max_len, e.dim());
        block.fill(&c, &e, max_len, &ids);
        // Refill with different contents, then back: capacity reuse must
        // not leak stale lanes into the zero padding.
        block.fill(&c, &e, max_len, &[31, 31, 31]);
        block.fill(&c, &e, max_len, &ids);
        let mut want = vec![0.0f32; max_len * e.dim()];
        for (r, &id) in ids.iter().enumerate() {
            let n = embedding_matrix(&c, &e, id, max_len, &mut want);
            let (got, got_n) = block.row(r);
            assert_eq!(got_n, n, "id {id}");
            assert_eq!(got, &want[..], "id {id}");
        }
    }

    #[test]
    fn repeated_tokens_fold_into_one_bucket_entry() {
        let (c, e) = setup();
        let repeat_id = 31u32;
        let mut block = FeatureBlock::new(e.dim());
        block.fill(&c, &e, &[repeat_id]);
        // 4 identical tokens → exactly one sparse entry of weight 4·(1/√4).
        assert_eq!(block.row_off[1] - block.row_off[0], 1);
        let w = 1.0 / (4.0f32).sqrt();
        assert_eq!(block.bow_val[0], w + w + w + w);
    }
}

//! Adam-optimized parameter tensors.

use rand::rngs::SmallRng;
use rand::Rng;

/// A flat parameter tensor with its gradient accumulator and Adam moments.
#[derive(Clone, Debug)]
pub struct Param {
    pub w: Vec<f32>,
    pub g: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Param {
    /// Zero-initialized parameters (biases).
    pub fn zeros(n: usize) -> Param {
        Param {
            w: vec![0.0; n],
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Uniform Glorot-style initialization in `[-scale, scale]`.
    pub fn uniform(n: usize, scale: f32, rng: &mut SmallRng) -> Param {
        let w = (0..n).map(|_| rng.gen_range(-scale..scale)).collect();
        Param {
            w,
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    pub fn len(&self) -> usize {
        self.w.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Reset accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Reset weights, gradients and Adam moments to the all-zero state of
    /// [`Param::zeros`] without releasing the allocations — the warm-start
    /// training paths lean on this being *exactly* equivalent to building
    /// a fresh zero tensor.
    pub fn reset_zeros(&mut self) {
        self.w.iter_mut().for_each(|x| *x = 0.0);
        self.g.iter_mut().for_each(|x| *x = 0.0);
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
    }

    /// One Adam step over the accumulated gradient; `t` is the 1-based step
    /// counter shared across all parameters of the model.
    pub fn adam_step(&mut self, lr: f32, t: u32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            let g = self.g[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy loss for prediction `p` and target `y ∈ {0,1}`.
#[inline]
pub fn bce(p: f32, y: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize (w-3)^2; gradient 2(w-3).
        let mut p = Param::zeros(1);
        for t in 1..=500 {
            p.zero_grad();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            p.adam_step(0.05, t);
        }
        assert!((p.w[0] - 3.0).abs() < 0.05, "w = {}", p.w[0]);
    }

    #[test]
    fn uniform_init_in_range_and_seeded() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = Param::uniform(100, 0.5, &mut rng);
        assert!(p.w.iter().all(|&x| (-0.5..0.5).contains(&x)));
        let mut rng2 = SmallRng::seed_from_u64(7);
        let q = Param::uniform(100, 0.5, &mut rng2);
        assert_eq!(p.w, q.w);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn bce_is_finite_and_ordered() {
        assert!(bce(0.9, 1.0) < bce(0.1, 1.0));
        assert!(bce(0.0, 1.0).is_finite());
        assert!(bce(1.0, 0.0).is_finite());
    }
}

//! Interned vocabulary.
//!
//! Every token in a [`crate::Corpus`] is represented by a dense [`Sym`] id.
//! Patterns, the trie index and the classifier all operate on `Sym`s, so
//! string comparisons happen exactly once — at interning time.

use std::collections::HashMap;
use std::fmt;

/// A dense token id. `Sym(0)` is the first interned token; ids are assigned
/// in interning order and are stable for the lifetime of the [`Vocab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index, usable directly into per-token tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// String interner with frequency counts.
///
/// Interning the same string twice yields the same [`Sym`]; frequencies track
/// how many times each token was interned (i.e. its corpus frequency when
/// built through [`crate::Corpus`]).
#[derive(Default, Clone)]
pub struct Vocab {
    map: HashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
    freq: Vec<u32>,
}

impl Vocab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `tok`, incrementing its frequency.
    pub fn intern(&mut self, tok: &str) -> Sym {
        if let Some(&s) = self.map.get(tok) {
            self.freq[s.index()] += 1;
            return s;
        }
        let s = Sym(self.strings.len() as u32);
        self.strings.push(tok.into());
        self.freq.push(1);
        self.map.insert(tok.into(), s);
        s
    }

    /// Look up an already-interned token without changing frequencies.
    pub fn get(&self, tok: &str) -> Option<Sym> {
        self.map.get(tok).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `s` was not produced by this vocabulary.
    pub fn resolve(&self, s: Sym) -> &str {
        &self.strings[s.index()]
    }

    /// Corpus frequency of `s` (number of `intern` calls that returned it).
    pub fn freq(&self, s: Sym) -> u32 {
        self.freq[s.index()]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over all `(Sym, token)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Vocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vocab({} tokens)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("shuttle");
        let b = v.intern("shuttle");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.freq(a), 2);
    }

    #[test]
    fn distinct_tokens_get_distinct_syms() {
        let mut v = Vocab::new();
        let a = v.intern("bus");
        let b = v.intern("shuttle");
        assert_ne!(a, b);
        assert_eq!(v.resolve(a), "bus");
        assert_eq!(v.resolve(b), "shuttle");
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocab::new();
        assert!(v.get("bart").is_none());
        let s = v.intern("bart");
        assert_eq!(v.get("bart"), Some(s));
        assert_eq!(v.freq(s), 1);
    }

    #[test]
    fn iter_preserves_interning_order() {
        let mut v = Vocab::new();
        v.intern("a");
        v.intern("b");
        v.intern("c");
        let toks: Vec<&str> = v.iter().map(|(_, t)| t).collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
    }

    #[test]
    fn sym_index_round_trips() {
        assert_eq!(Sym(7).index(), 7);
    }
}

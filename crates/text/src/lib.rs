//! NLP substrate for Darwin.
//!
//! The Darwin paper uses SpaCy for tokenization, part-of-speech tagging,
//! dependency parsing and word embeddings. This crate provides deterministic,
//! dependency-free Rust replacements for all four, exposing exactly the
//! information the heuristic grammars (`darwin-grammar`) and the benefit
//! classifier (`darwin-classifier`) consume:
//!
//! * [`tokenize`] — a whitespace/punctuation tokenizer,
//! * [`vocab::Vocab`] — an interned vocabulary mapping tokens to dense
//!   [`vocab::Sym`] ids,
//! * [`pos::Tagger`] — a lexicon + suffix rule tagger over the universal POS
//!   tagset (Petrov et al., as cited by the paper),
//! * [`depparse`] — a deterministic head-attachment dependency parser,
//! * [`corpus::Corpus`] — the container Darwin operates over, with parallel
//!   construction,
//! * [`embed::Embeddings`] — reflective random-indexing word vectors whose
//!   similarity reflects corpus co-occurrence (the property UniversalSearch
//!   relies on to generalize `bus` → `shuttle`).

pub mod corpus;
pub mod depparse;
pub mod embed;
pub mod pos;
pub mod sentence;
pub mod tokenize;
pub mod vocab;

pub use corpus::{Corpus, CorpusBuilder};
pub use embed::Embeddings;
pub use pos::PosTag;
pub use sentence::Sentence;
pub use vocab::{Sym, Vocab};

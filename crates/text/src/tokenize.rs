//! Tokenization.
//!
//! A deterministic, lossless-enough tokenizer for the labeling workloads in
//! the paper: lowercases, splits on whitespace, splits leading/trailing
//! punctuation into their own tokens, and keeps word-internal apostrophes and
//! hyphens (`what's`, `check-in`) as single tokens, mirroring how SpaCy's
//! tokenizer treats the hotel-concierge questions of Example 1.

/// Tokenize `text` into lowercase tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(text.len() / 5 + 1);
    for raw in text.split_whitespace() {
        split_token(raw, &mut out);
    }
    out
}

/// True for characters that should become standalone punctuation tokens.
fn is_punct(c: char) -> bool {
    matches!(
        c,
        '.' | ','
            | '!'
            | '?'
            | ';'
            | ':'
            | '('
            | ')'
            | '['
            | ']'
            | '{'
            | '}'
            | '"'
            | '…'
            | '“'
            | '”'
            | '‘'
            | '’'
    ) || (c == '\'' || c == '`')
}

/// True for characters allowed inside a word token.
fn is_word_internal(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '-'
}

fn split_token(raw: &str, out: &mut Vec<String>) {
    // Fast path: an already-lowercase ASCII word with nothing to peel or
    // split (no uppercase to fold, no punctuation — apostrophes excluded
    // because leading/trailing ones peel). The general path below would
    // reproduce the token byte-for-byte, so this only skips its char
    // buffer and intermediate strings.
    if !raw.is_empty()
        && raw
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    {
        out.push(raw.to_string());
        return;
    }
    let chars: Vec<char> = raw.chars().collect();
    let mut start = 0;
    let mut end = chars.len();

    // Peel leading punctuation.
    while start < end && is_punct(chars[start]) {
        out.push(chars[start].to_lowercase().collect());
        start += 1;
    }
    // Find trailing punctuation (emitted after the core token).
    let mut trail = Vec::new();
    while end > start && is_punct(chars[end - 1]) {
        trail.push(chars[end - 1].to_lowercase().collect::<String>());
        end -= 1;
    }
    if start < end {
        let core: String = chars[start..end].iter().collect::<String>().to_lowercase();
        // Split any remaining non-word-internal characters inside the core.
        let mut piece = String::new();
        for c in core.chars() {
            if is_word_internal(c) {
                piece.push(c);
            } else {
                if !piece.is_empty() {
                    out.push(std::mem::take(&mut piece));
                }
                out.push(c.to_string());
            }
        }
        if !piece.is_empty() {
            out.push(piece);
        }
    }
    out.extend(trail.into_iter().rev());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn lowercases_and_splits_whitespace() {
        assert_eq!(toks("Best Way To"), vec!["best", "way", "to"]);
    }

    #[test]
    fn splits_trailing_question_mark() {
        assert_eq!(
            toks("What is the best way to get to SFO airport?"),
            vec!["what", "is", "the", "best", "way", "to", "get", "to", "sfo", "airport", "?"]
        );
    }

    #[test]
    fn keeps_internal_apostrophe_and_hyphen() {
        assert_eq!(
            toks("what's check-in like?"),
            vec!["what's", "check-in", "like", "?"]
        );
    }

    #[test]
    fn peels_leading_punctuation() {
        assert_eq!(toks("\"hello\""), vec!["\"", "hello", "\""]);
    }

    #[test]
    fn multiple_trailing_puncts_preserve_order() {
        assert_eq!(toks("really?!"), vec!["really", "?", "!"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(toks("").is_empty());
        assert!(toks("   \t\n ").is_empty());
    }

    #[test]
    fn numbers_survive() {
        assert_eq!(toks("gate 42 opens"), vec!["gate", "42", "opens"]);
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(toks("café naïve"), vec!["café", "naïve"]);
    }
}

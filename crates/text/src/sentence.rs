//! The per-sentence record Darwin operates on.

use crate::pos::PosTag;
use crate::vocab::Sym;

/// A fully analyzed sentence: interned tokens, universal POS tags, and a
/// dependency tree encoded as a head array (`heads[i]` is the index of token
/// `i`'s head; the root points to itself).
///
/// The tree is additionally materialized as a CSR child adjacency
/// (`child_offsets`/`child_list`), built once at construction: children of
/// token `i` are `child_list[child_offsets[i]..child_offsets[i+1]]`, in
/// increasing token order — the same order the head-array filter scan used
/// to produce, so every consumer iterates identically. The CSR fields are
/// private so they can never drift from `heads`.
#[derive(Clone, Debug)]
pub struct Sentence {
    /// Position of this sentence in its [`crate::Corpus`].
    pub id: u32,
    pub tokens: Vec<Sym>,
    pub tags: Vec<PosTag>,
    pub heads: Vec<u16>,
    child_offsets: Vec<u32>,
    child_list: Vec<u16>,
}

impl Sentence {
    /// Analyze-time constructor: takes the head array and materializes the
    /// CSR child adjacency (two counting passes, children ascending).
    pub fn new(id: u32, tokens: Vec<Sym>, tags: Vec<PosTag>, heads: Vec<u16>) -> Sentence {
        let n = heads.len();
        let mut child_offsets = vec![0u32; n + 1];
        for (c, &h) in heads.iter().enumerate() {
            if h as usize != c {
                child_offsets[h as usize + 1] += 1;
            }
        }
        for i in 0..n {
            child_offsets[i + 1] += child_offsets[i];
        }
        let mut child_list = vec![0u16; child_offsets[n] as usize];
        // Fill ascending, bumping each bucket's cursor in place; afterwards
        // offsets[i] holds bucket i's *end*, so shift right to restore starts.
        for (c, &h) in heads.iter().enumerate() {
            if h as usize != c {
                let pos = child_offsets[h as usize];
                child_list[pos as usize] = c as u16;
                child_offsets[h as usize] = pos + 1;
            }
        }
        for i in (1..=n).rev() {
            child_offsets[i] = child_offsets[i - 1];
        }
        if n > 0 {
            child_offsets[0] = 0;
        }
        Sentence {
            id,
            tokens,
            tags,
            heads,
            child_offsets,
            child_list,
        }
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Index of the root token (its own head), or `None` for empty sentences.
    pub fn root(&self) -> Option<usize> {
        self.heads
            .iter()
            .enumerate()
            .find(|(i, &h)| *i == h as usize)
            .map(|(i, _)| i)
    }

    /// Children of token `i` in the dependency tree, ascending: a CSR slice
    /// iterator (bit-identical order to the head-array filter scan it
    /// replaced).
    #[inline]
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.children_slice(i).iter().map(|&c| c as usize)
    }

    /// Children of token `i` as a raw CSR slice (hot paths index it
    /// directly; token indices fit `u16` by construction).
    #[inline]
    pub fn children_slice(&self, i: usize) -> &[u16] {
        &self.child_list[self.child_offsets[i] as usize..self.child_offsets[i + 1] as usize]
    }

    /// All proper descendants of token `i`: a stack walk over the CSR.
    pub fn descendants(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.children(i).collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n));
        }
        out
    }

    /// True if `anc` is a proper ancestor of `node`.
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = node;
        loop {
            let h = self.heads[cur] as usize;
            if h == cur {
                return false;
            }
            if h == anc {
                return true;
            }
            cur = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(heads: Vec<u16>) -> Sentence {
        let n = heads.len();
        Sentence::new(
            0,
            (0..n as u32).map(Sym).collect(),
            vec![PosTag::Noun; n],
            heads,
        )
    }

    #[test]
    fn root_is_self_headed() {
        let s = sent(vec![1, 1, 1]);
        assert_eq!(s.root(), Some(1));
    }

    #[test]
    fn children_and_descendants() {
        // 0 -> 1 <- 2, 3 -> 2 (tree: 1 is root, children {0, 2}; 2 has child 3)
        let s = sent(vec![1, 1, 1, 2]);
        let mut c: Vec<usize> = s.children(1).collect();
        c.sort_unstable();
        assert_eq!(c, vec![0, 2]);
        let mut d = s.descendants(1);
        d.sort_unstable();
        assert_eq!(d, vec![0, 2, 3]);
        assert!(s.is_ancestor(1, 3));
        assert!(!s.is_ancestor(3, 1));
        assert!(!s.is_ancestor(0, 3));
    }

    #[test]
    fn empty_sentence_has_no_root() {
        let s = sent(vec![]);
        assert_eq!(s.root(), None);
        assert!(s.is_empty());
    }

    /// The CSR adjacency must reproduce the head-array filter scan exactly:
    /// same children, same (ascending) order, self-loops excluded.
    #[test]
    fn csr_matches_filter_scan() {
        let cases: Vec<Vec<u16>> = vec![
            vec![],
            vec![0],
            vec![1, 1, 1, 2],
            vec![0, 0, 0, 0],
            vec![3, 3, 3, 3],
            vec![1, 2, 3, 3, 3, 2],
            vec![0, 1, 2], // three self-rooted singletons (forest)
            vec![5, 0, 0, 2, 2, 5, 5, 5],
        ];
        for heads in cases {
            let s = sent(heads.clone());
            for i in 0..heads.len() {
                let scan: Vec<usize> = heads
                    .iter()
                    .enumerate()
                    .filter(|(c, &h)| h as usize == i && *c != i)
                    .map(|(c, _)| c)
                    .collect();
                let csr: Vec<usize> = s.children(i).collect();
                assert_eq!(csr, scan, "heads={heads:?} i={i}");
            }
        }
    }
}

//! The per-sentence record Darwin operates on.

use crate::pos::PosTag;
use crate::vocab::Sym;

/// A fully analyzed sentence: interned tokens, universal POS tags, and a
/// dependency tree encoded as a head array (`heads[i]` is the index of token
/// `i`'s head; the root points to itself).
#[derive(Clone, Debug)]
pub struct Sentence {
    /// Position of this sentence in its [`crate::Corpus`].
    pub id: u32,
    pub tokens: Vec<Sym>,
    pub tags: Vec<PosTag>,
    pub heads: Vec<u16>,
}

impl Sentence {
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Index of the root token (its own head), or `None` for empty sentences.
    pub fn root(&self) -> Option<usize> {
        self.heads
            .iter()
            .enumerate()
            .find(|(i, &h)| *i == h as usize)
            .map(|(i, _)| i)
    }

    /// Children of token `i` in the dependency tree.
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.heads
            .iter()
            .enumerate()
            .filter(move |(c, &h)| h as usize == i && *c != i)
            .map(|(c, _)| c)
    }

    /// All proper descendants of token `i` in the dependency tree.
    pub fn descendants(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.children(i).collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n));
        }
        out
    }

    /// True if `anc` is a proper ancestor of `node`.
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = node;
        loop {
            let h = self.heads[cur] as usize;
            if h == cur {
                return false;
            }
            if h == anc {
                return true;
            }
            cur = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(heads: Vec<u16>) -> Sentence {
        let n = heads.len();
        Sentence {
            id: 0,
            tokens: (0..n as u32).map(Sym).collect(),
            tags: vec![PosTag::Noun; n],
            heads,
        }
    }

    #[test]
    fn root_is_self_headed() {
        let s = sent(vec![1, 1, 1]);
        assert_eq!(s.root(), Some(1));
    }

    #[test]
    fn children_and_descendants() {
        // 0 -> 1 <- 2, 3 -> 2 (tree: 1 is root, children {0, 2}; 2 has child 3)
        let s = sent(vec![1, 1, 1, 2]);
        let mut c: Vec<usize> = s.children(1).collect();
        c.sort_unstable();
        assert_eq!(c, vec![0, 2]);
        let mut d = s.descendants(1);
        d.sort_unstable();
        assert_eq!(d, vec![0, 2, 3]);
        assert!(s.is_ancestor(1, 3));
        assert!(!s.is_ancestor(3, 1));
        assert!(!s.is_ancestor(0, 3));
    }

    #[test]
    fn empty_sentence_has_no_root() {
        let s = sent(vec![]);
        assert_eq!(s.root(), None);
        assert!(s.is_empty());
    }
}

//! Word embeddings by reflective random indexing.
//!
//! The paper feeds SpaCy's pre-trained vectors to the benefit classifier so
//! that it generalizes across semantically related rules ("on identifying
//! the importance of 'bus' …, Darwin identifies 'public transport' as
//! another possibility due to their related semantics", §3). We reproduce
//! that property without external vector files:
//!
//! 1. every token starts from a deterministic pseudo-random unit vector
//!    seeded by its string hash (so vectors are stable across runs and
//!    corpora), and
//! 2. a small number of *reflection* passes blend each token's vector with
//!    the mean vector of its corpus context windows.
//!
//! After smoothing, tokens that appear in similar contexts (e.g. `bus` and
//! `shuttle` both in "… to the airport") have high cosine similarity, which
//! is exactly the signal the classifier needs.

#![allow(clippy::needless_range_loop)] // index math mirrors the tensor strides

use crate::corpus::Corpus;
use crate::vocab::Sym;

/// Configuration for [`Embeddings::train`].
#[derive(Clone, Debug)]
pub struct EmbedConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Context window radius (tokens on each side).
    pub window: usize,
    /// Number of reflection (smoothing) passes.
    pub passes: usize,
    /// Weight kept on the token's own vector per pass (rest goes to context).
    pub self_weight: f32,
    /// Seed for the deterministic base vectors.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig {
            dim: 32,
            window: 2,
            passes: 2,
            self_weight: 0.4,
            seed: 0xDA21,
        }
    }
}

/// Dense word vectors for every token of a corpus vocabulary.
#[derive(Clone)]
pub struct Embeddings {
    dim: usize,
    /// Row-major `vocab_len × dim`.
    table: Vec<f32>,
}

impl Embeddings {
    /// Train embeddings over `corpus` (see module docs).
    pub fn train(corpus: &Corpus, cfg: &EmbedConfig) -> Embeddings {
        let v = corpus.vocab().len();
        let dim = cfg.dim;
        let mut table = vec![0.0f32; v * dim];

        // Base vectors: splitmix64 stream seeded by (global seed, token hash).
        for (sym, tok) in corpus.vocab().iter() {
            let mut state = cfg.seed ^ fnv1a(tok);
            let row = &mut table[sym.index() * dim..(sym.index() + 1) * dim];
            for x in row.iter_mut() {
                *x = unit_uniform(&mut state) * 2.0 - 1.0;
            }
            normalize(row);
        }

        // Context weights damp very frequent tokens (articles, shared slot
        // fillers): without damping every word's context is dominated by
        // the same handful of high-frequency neighbors and all vectors
        // collapse together.
        let ctx_weight: Vec<f32> = (0..v)
            .map(|w| 1.0 / (1.0 + (corpus.vocab().freq(Sym(w as u32)) as f32).ln().max(0.0)))
            .collect();

        // Reflection passes.
        let mut ctx_sum = vec![0.0f32; v * dim];
        let mut ctx_cnt = vec![0.0f32; v];
        for _ in 0..cfg.passes {
            ctx_sum.iter_mut().for_each(|x| *x = 0.0);
            ctx_cnt.iter_mut().for_each(|x| *x = 0.0);
            for s in corpus.sentences() {
                let toks = &s.tokens;
                for (i, &t) in toks.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(toks.len());
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let c = toks[j];
                        let wgt = ctx_weight[c.index()];
                        let src = c.index() * dim;
                        let dst = t.index() * dim;
                        for d in 0..dim {
                            ctx_sum[dst + d] += wgt * table[src + d];
                        }
                        ctx_cnt[t.index()] += wgt;
                    }
                }
            }
            for w in 0..v {
                if ctx_cnt[w] == 0.0 {
                    continue;
                }
                let inv = 1.0 / ctx_cnt[w];
                let row = w * dim;
                for d in 0..dim {
                    table[row + d] = cfg.self_weight * table[row + d]
                        + (1.0 - cfg.self_weight) * ctx_sum[row + d] * inv;
                }
                normalize(&mut table[row..row + dim]);
            }
        }

        Embeddings { dim, table }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of token rows.
    pub fn len(&self) -> usize {
        self.table.len().checked_div(self.dim).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The vector for token `s`.
    pub fn vector(&self, s: Sym) -> &[f32] {
        &self.table[s.index() * self.dim..(s.index() + 1) * self.dim]
    }

    /// Extend the table with zero rows up to `vocab_len` tokens.
    ///
    /// Appended corpora can intern symbols the (deliberately frozen)
    /// training pass never saw; without rows for them [`Embeddings::vector`]
    /// would index past the table. A zero vector is the right OOV
    /// embedding here: it contributes nothing to a sentence's mean and has
    /// zero cosine similarity to everything — and because growth is
    /// deterministic, featurization of a grown corpus is bit-identical
    /// whether the corpus was appended to or rebuilt from scratch against
    /// the same frozen embeddings. Shrinking is refused; growing to a
    /// smaller `vocab_len` is a no-op.
    pub fn grow_to(&mut self, vocab_len: usize) {
        let want = vocab_len * self.dim;
        if want > self.table.len() {
            self.table.resize(want, 0.0);
        }
    }

    /// Cosine similarity between two tokens' vectors.
    pub fn similarity(&self, a: Sym, b: Sym) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// Mean vector of a token sequence, written into `out` (len == dim).
    pub fn mean_into(&self, tokens: &[Sym], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        out.iter_mut().for_each(|x| *x = 0.0);
        if tokens.is_empty() {
            return;
        }
        for &t in tokens {
            let v = self.vector(t);
            for d in 0..self.dim {
                out[d] += v[d];
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        out.iter_mut().for_each(|x| *x *= inv);
    }
}

/// Cosine similarity of two equal-length vectors (0 if either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

fn normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        v.iter_mut().for_each(|x| *x /= n);
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 → f32 in [0, 1).
fn unit_uniform(state: &mut u64) -> f32 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn ctx_corpus() -> Corpus {
        // "bus" and "shuttle" share contexts; "pizza" does not.
        let mut texts = Vec::new();
        for _ in 0..30 {
            texts.push("take the bus to the airport".to_string());
            texts.push("take the shuttle to the airport".to_string());
            texts.push("i ate pizza with extra cheese".to_string());
        }
        Corpus::from_texts(texts)
    }

    #[test]
    fn cooccurring_words_are_similar() {
        let c = ctx_corpus();
        let e = Embeddings::train(&c, &EmbedConfig::default());
        let bus = c.vocab().get("bus").unwrap();
        let shuttle = c.vocab().get("shuttle").unwrap();
        let pizza = c.vocab().get("pizza").unwrap();
        assert!(
            e.similarity(bus, shuttle) > e.similarity(bus, pizza) + 0.1,
            "bus~shuttle {} vs bus~pizza {}",
            e.similarity(bus, shuttle),
            e.similarity(bus, pizza)
        );
    }

    #[test]
    fn vectors_are_unit_norm() {
        let c = ctx_corpus();
        let e = Embeddings::train(&c, &EmbedConfig::default());
        for (sym, _) in c.vocab().iter() {
            let n: f32 = e.vector(sym).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let c = ctx_corpus();
        let e1 = Embeddings::train(&c, &EmbedConfig::default());
        let e2 = Embeddings::train(&c, &EmbedConfig::default());
        let s = c.vocab().get("bus").unwrap();
        assert_eq!(e1.vector(s), e2.vector(s));
    }

    #[test]
    fn mean_into_averages() {
        let c = ctx_corpus();
        let e = Embeddings::train(&c, &EmbedConfig::default());
        let a = c.vocab().get("bus").unwrap();
        let b = c.vocab().get("pizza").unwrap();
        let mut out = vec![0.0; e.dim()];
        e.mean_into(&[a, b], &mut out);
        for d in 0..e.dim() {
            let want = (e.vector(a)[d] + e.vector(b)[d]) / 2.0;
            assert!((out[d] - want).abs() < 1e-6);
        }
        e.mean_into(&[], &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
    }
}

//! Part-of-speech tagging over the universal tagset.
//!
//! The TreeMatch grammar (paper §2, Definition 3) mixes tokens and POS tags
//! as terminals, citing the universal tagset of Petrov et al. This module
//! implements a deterministic lexicon + suffix-rule tagger producing that
//! tagset. It is intentionally simple: TreeMatch only needs *consistent*
//! tags so that a pattern like `is/NOUN ∧ job` matches the same sentences on
//! every run — linguistic perfection is not required for the evaluation
//! (see DESIGN.md, substitutions table).

use std::fmt;
use std::str::FromStr;

/// Universal POS tags (Petrov, Das, McDonald 2011), the terminal alphabet
/// of the TreeMatch grammar alongside corpus tokens.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum PosTag {
    Adj,
    Adp,
    Adv,
    Conj,
    Det,
    Noun,
    Num,
    Part,
    Pron,
    Propn,
    Punct,
    Verb,
    X,
}

impl PosTag {
    pub const ALL: [PosTag; 13] = [
        PosTag::Adj,
        PosTag::Adp,
        PosTag::Adv,
        PosTag::Conj,
        PosTag::Det,
        PosTag::Noun,
        PosTag::Num,
        PosTag::Part,
        PosTag::Pron,
        PosTag::Propn,
        PosTag::Punct,
        PosTag::Verb,
        PosTag::X,
    ];

    /// Canonical upper-case name, as written in TreeMatch patterns.
    pub fn name(self) -> &'static str {
        match self {
            PosTag::Adj => "ADJ",
            PosTag::Adp => "ADP",
            PosTag::Adv => "ADV",
            PosTag::Conj => "CONJ",
            PosTag::Det => "DET",
            PosTag::Noun => "NOUN",
            PosTag::Num => "NUM",
            PosTag::Part => "PART",
            PosTag::Pron => "PRON",
            PosTag::Propn => "PROPN",
            PosTag::Punct => "PUNCT",
            PosTag::Verb => "VERB",
            PosTag::X => "X",
        }
    }

    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    pub fn from_u8(v: u8) -> Option<PosTag> {
        PosTag::ALL.get(v as usize).copied()
    }

    /// Content-word tags: useful as pattern terminals; function words and
    /// punctuation rarely make good rule anchors on their own.
    pub fn is_content(self) -> bool {
        matches!(
            self,
            PosTag::Noun | PosTag::Verb | PosTag::Adj | PosTag::Propn | PosTag::Adv
        )
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PosTag {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        PosTag::ALL
            .iter()
            .copied()
            .find(|t| t.name() == s)
            .ok_or(())
    }
}

/// Deterministic lexicon + suffix tagger.
pub struct Tagger;

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "some", "any", "each", "every", "no",
    "another", "such",
];
const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "with", "from", "about", "into", "through", "during", "after",
    "before", "between", "under", "over", "near", "across", "along", "around", "via", "within",
    "without", "towards", "toward", "off", "onto", "upon", "per", "than", "as",
];
const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "her",
    "us",
    "them",
    "my",
    "your",
    "his",
    "its",
    "our",
    "their",
    "mine",
    "yours",
    "myself",
    "yourself",
    "there",
    "who",
    "whom",
    "anyone",
    "someone",
    "something",
    "anything",
    "everyone",
    "everything",
    "nothing",
];
const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "so", "yet", "if", "because", "while", "when", "although", "whether",
];
const AUX_VERBS: &[&str] = &[
    "is", "am", "are", "was", "were", "be", "been", "being", "do", "does", "did", "have", "has",
    "had", "will", "would", "can", "could", "shall", "should", "may", "might", "must", "get",
    "got", "gets", "getting",
];
const COMMON_VERBS: &[&str] = &[
    "go",
    "goes",
    "going",
    "went",
    "gone",
    "take",
    "takes",
    "took",
    "taken",
    "taking",
    "make",
    "makes",
    "made",
    "making",
    "come",
    "comes",
    "came",
    "coming",
    "see",
    "saw",
    "seen",
    "know",
    "knew",
    "known",
    "think",
    "thought",
    "want",
    "wants",
    "wanted",
    "need",
    "needs",
    "needed",
    "find",
    "found",
    "give",
    "gave",
    "given",
    "tell",
    "told",
    "ask",
    "asked",
    "work",
    "worked",
    "works",
    "call",
    "called",
    "try",
    "tried",
    "use",
    "used",
    "order",
    "check",
    "book",
    "reach",
    "visit",
    "leave",
    "left",
    "arrive",
    "arrived",
    "cause",
    "caused",
    "causes",
    "causing",
    "trigger",
    "triggered",
    "triggers",
    "lead",
    "leads",
    "led",
    "result",
    "resulted",
    "results",
    "induce",
    "induced",
    "induces",
    "play",
    "played",
    "plays",
    "playing",
    "perform",
    "performed",
    "performs",
    "compose",
    "composed",
    "composes",
    "write",
    "wrote",
    "written",
    "writes",
    "sing",
    "sang",
    "sung",
    "sings",
    "teach",
    "taught",
    "teaches",
    "release",
    "released",
    "releases",
    "record",
    "recorded",
    "craving",
    "crave",
    "eat",
    "ate",
    "eaten",
    "eating",
    "walk",
    "drive",
    "ride",
    "fly",
    "travel",
    "stay",
    "recommend",
    "recommended",
    "apply",
    "applied",
    "hire",
    "hired",
    "hiring",
    "produced",
    "produces",
    "produce",
    "directed",
    "directs",
    "direct",
];
const ADVERBS: &[&str] = &[
    "very", "too", "also", "just", "now", "then", "here", "soon", "already", "still", "again",
    "never", "always", "often", "really", "quite", "maybe", "perhaps", "tomorrow", "today",
    "tonight", "far", "away", "back", "downtown", "nearby", "how", "where", "why", "not",
];
const ADJECTIVES: &[&str] = &[
    "best",
    "good",
    "great",
    "new",
    "old",
    "big",
    "small",
    "fast",
    "fastest",
    "slow",
    "cheap",
    "cheapest",
    "easy",
    "easiest",
    "quick",
    "quickest",
    "nice",
    "famous",
    "popular",
    "major",
    "severe",
    "local",
    "public",
    "private",
    "free",
    "open",
    "closed",
    "available",
    "late",
    "early",
    "long",
    "short",
    "main",
    "several",
    "many",
    "few",
    "much",
    "more",
    "most",
    "other",
    "own",
    "same",
    "different",
    "able",
    "hungry",
    "delicious",
    "spicy",
    "italian",
    "chinese",
    "mexican",
    "japanese",
    "french",
    "nearest",
    "closest",
    "what",
    "which",
];
const PARTICLES: &[&str] = &[
    "to", "up", "down", "out", "'s", "n't", "'re", "'ve", "'ll", "'d", "'m",
];

/// Suffix → tag heuristics applied to otherwise-unknown words.
const SUFFIX_RULES: &[(&str, PosTag)] = &[
    ("ing", PosTag::Verb),
    ("ed", PosTag::Verb),
    ("tion", PosTag::Noun),
    ("sion", PosTag::Noun),
    ("ness", PosTag::Noun),
    ("ment", PosTag::Noun),
    ("ship", PosTag::Noun),
    ("ist", PosTag::Noun),
    ("ism", PosTag::Noun),
    ("ity", PosTag::Noun),
    ("er", PosTag::Noun),
    ("or", PosTag::Noun),
    ("ly", PosTag::Adv),
    ("ous", PosTag::Adj),
    ("ful", PosTag::Adj),
    ("ive", PosTag::Adj),
    ("ible", PosTag::Adj),
    ("able", PosTag::Adj),
    ("est", PosTag::Adj),
    ("ic", PosTag::Adj),
    ("al", PosTag::Adj),
];

impl Tagger {
    /// Tag a tokenized sentence. `tokens` are the lowercase token strings and
    /// `originals` the pre-lowercasing forms when available (used for the
    /// proper-noun capitalization cue); pass the same slice twice otherwise.
    pub fn tag<T: AsRef<str>>(tokens: &[T]) -> Vec<PosTag> {
        let mut tags: Vec<PosTag> = tokens.iter().map(|t| Self::tag_word(t.as_ref())).collect();
        Self::repair(&mut tags, |i| tokens[i].as_ref() == "to");
        tags
    }

    /// The context repair passes of [`Tagger::tag`], shared with the
    /// symbol-cached tagging path in the corpus analyzer: `is_to(i)` must
    /// answer whether token `i` is the literal word "to".
    pub(crate) fn repair(tags: &mut [PosTag], is_to: impl Fn(usize) -> bool) {
        for i in 0..tags.len() {
            // "to" + verb => PART; otherwise ADP.
            if is_to(i) {
                let next_is_verb = tags.get(i + 1).is_some_and(|&t| t == PosTag::Verb);
                tags[i] = if next_is_verb {
                    PosTag::Part
                } else {
                    PosTag::Adp
                };
            }
        }
        for i in 0..tags.len() {
            // DET followed by a VERB-tagged word usually means a deverbal
            // noun ("the cause", "a result").
            if tags[i] == PosTag::Det && tags.get(i + 1).copied() == Some(PosTag::Verb) {
                tags[i + 1] = PosTag::Noun;
            }
        }
    }

    /// The context-free (lexicon + suffix-rule) tag of one word — a pure
    /// function of the string, which is what lets the corpus analyzer
    /// cache it per interned symbol instead of re-running the lexicon
    /// scans on every occurrence.
    pub(crate) fn tag_word(w: &str) -> PosTag {
        if w.chars().all(|c| !c.is_alphanumeric()) {
            return PosTag::Punct;
        }
        if w.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return PosTag::Num;
        }
        if DETERMINERS.contains(&w) {
            return PosTag::Det;
        }
        if PARTICLES.contains(&w) {
            return PosTag::Part;
        }
        if PREPOSITIONS.contains(&w) {
            return PosTag::Adp;
        }
        if PRONOUNS.contains(&w) {
            return PosTag::Pron;
        }
        if CONJUNCTIONS.contains(&w) {
            return PosTag::Conj;
        }
        if AUX_VERBS.contains(&w) || COMMON_VERBS.contains(&w) {
            return PosTag::Verb;
        }
        if ADVERBS.contains(&w) {
            return PosTag::Adv;
        }
        if ADJECTIVES.contains(&w) {
            return PosTag::Adj;
        }
        for (suf, tag) in SUFFIX_RULES {
            if w.len() > suf.len() + 1 && w.ends_with(suf) {
                return *tag;
            }
        }
        PosTag::Noun
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag_one(w: &str) -> PosTag {
        Tagger::tag(&[w])[0]
    }

    #[test]
    fn closed_classes() {
        assert_eq!(tag_one("the"), PosTag::Det);
        assert_eq!(tag_one("from"), PosTag::Adp);
        assert_eq!(tag_one("they"), PosTag::Pron);
        assert_eq!(tag_one("and"), PosTag::Conj);
        assert_eq!(tag_one("is"), PosTag::Verb);
        assert_eq!(tag_one("?"), PosTag::Punct);
        assert_eq!(tag_one("42"), PosTag::Num);
    }

    #[test]
    fn suffix_rules_fire_for_unknown_words() {
        assert_eq!(tag_one("zorgification"), PosTag::Noun);
        assert_eq!(tag_one("blorbly"), PosTag::Adv);
        assert_eq!(tag_one("quuxious"), PosTag::Adj);
        assert_eq!(tag_one("frobbing"), PosTag::Verb);
    }

    #[test]
    fn default_is_noun() {
        assert_eq!(tag_one("bart"), PosTag::Noun);
        assert_eq!(tag_one("sfo"), PosTag::Noun);
    }

    #[test]
    fn to_disambiguation() {
        // "to get" -> PART, "to the" -> ADP
        let tags = Tagger::tag(&["way", "to", "get", "to", "the", "airport"]);
        assert_eq!(tags[1], PosTag::Part);
        assert_eq!(tags[3], PosTag::Adp);
    }

    #[test]
    fn det_verb_becomes_noun() {
        let tags = Tagger::tag(&["the", "cause", "of", "the", "fire"]);
        assert_eq!(tags[1], PosTag::Noun);
    }

    #[test]
    fn example_sentence_roundtrip() {
        // "Uber is the best way to our hotel" — Figure 3 of the paper.
        let tags = Tagger::tag(&["uber", "is", "the", "best", "way", "to", "our", "hotel"]);
        assert_eq!(
            tags,
            vec![
                PosTag::Noun, // "uber" unknown -> NOUN (paper: PROPN; both nominal)
                PosTag::Verb,
                PosTag::Det,
                PosTag::Adj,
                PosTag::Noun,
                PosTag::Adp,
                PosTag::Pron,
                PosTag::Noun,
            ]
        );
    }

    #[test]
    fn tag_u8_roundtrip() {
        for t in PosTag::ALL {
            assert_eq!(PosTag::from_u8(t.as_u8()), Some(t));
            assert_eq!(t.name().parse::<PosTag>(), Ok(t));
        }
        assert_eq!(PosTag::from_u8(200), None);
        assert!("NOPE".parse::<PosTag>().is_err());
    }
}

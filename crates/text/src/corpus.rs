//! Corpus container and (parallel) linguistic preprocessing.

use crate::depparse;
use crate::pos::Tagger;
use crate::sentence::Sentence;
use crate::vocab::{Sym, Vocab};

/// An analyzed corpus: the shared vocabulary plus one [`Sentence`] per input
/// text, in input order. Sentence ids are their positions.
#[derive(Clone)]
pub struct Corpus {
    vocab: Vocab,
    sentences: Vec<Sentence>,
    /// `base_tags[sym]` caches the context-free lexicon tag of each interned
    /// symbol ([`Tagger::tag_word`] is a pure function of the string), so
    /// tagging a sentence is a table lookup per token plus the positional
    /// repair passes instead of a lexicon scan per occurrence.
    base_tags: Vec<crate::pos::PosTag>,
}

impl Corpus {
    /// Analyze `texts` sequentially (tokenize → intern → tag → parse).
    pub fn from_texts<I, S>(texts: I) -> Corpus
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let token_lists: Vec<Vec<String>> = texts
            .into_iter()
            .map(|t| crate::tokenize::tokenize(t.as_ref()))
            .collect();
        Self::from_token_lists(token_lists, 1)
    }

    /// Analyze `texts` using `threads` worker threads for the tag/parse
    /// phase (interning is inherently serial and cheap). Deterministic:
    /// output is identical to the sequential path.
    pub fn from_texts_parallel<S: AsRef<str> + Sync>(texts: &[S], threads: usize) -> Corpus {
        Self::from_token_lists(tokenize_batch(texts, threads), threads)
    }

    fn from_token_lists(token_lists: Vec<Vec<String>>, threads: usize) -> Corpus {
        let mut vocab = Vocab::new();
        let mut sentences = Vec::with_capacity(token_lists.len());
        let mut base_tags = Vec::new();
        analyze_append(
            &mut vocab,
            &mut base_tags,
            &mut sentences,
            &token_lists,
            threads,
        );
        Corpus {
            vocab,
            sentences,
            base_tags,
        }
    }

    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    pub fn sentence(&self, id: u32) -> &Sentence {
        &self.sentences[id as usize]
    }

    pub fn sentences(&self) -> &[Sentence] {
        &self.sentences
    }

    /// Reconstruct display text for a sentence (tokens joined by spaces).
    pub fn text(&self, id: u32) -> String {
        let s = self.sentence(id);
        let mut out = String::new();
        for (i, &t) in s.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.vocab.resolve(t));
        }
        out
    }

    /// Append `texts` to the corpus: tokenize, intern into the existing
    /// vocabulary, tag and parse, continuing sentence ids from
    /// [`Corpus::len`]. Returns the number of sentences appended.
    ///
    /// The grown corpus is exactly what [`Corpus::from_texts`] would build
    /// over the concatenation — interning is serial in input order and
    /// analysis is per sentence, so pre-existing sentences, symbol ids and
    /// the vocabulary prefix are all untouched (the same argument as
    /// [`CorpusBuilder`], which is this method behind a by-value API).
    ///
    /// Both analysis phases — tokenization and tag/parse — fan out over
    /// `threads` workers for large batches, with output identical to the
    /// sequential path.
    pub fn append_texts<I, S>(&mut self, texts: I, threads: usize) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str> + Sync,
    {
        let texts: Vec<S> = texts.into_iter().collect();
        let token_lists = tokenize_batch(&texts, threads.max(1));
        let added = token_lists.len();
        analyze_append(
            &mut self.vocab,
            &mut self.base_tags,
            &mut self.sentences,
            &token_lists,
            threads.max(1),
        );
        added
    }

    /// Mean sentence length in tokens.
    pub fn mean_len(&self) -> f64 {
        if self.sentences.is_empty() {
            return 0.0;
        }
        let total: usize = self.sentences.iter().map(|s| s.len()).sum();
        total as f64 / self.sentences.len() as f64
    }
}

/// Tokenize a batch, fanning out over `threads` workers when the batch is
/// large enough to amortize the spawns. Deterministic: per-text
/// tokenization is pure and the chunked join preserves input order, so the
/// output is identical for every thread count.
fn tokenize_batch<S: AsRef<str> + Sync>(texts: &[S], threads: usize) -> Vec<Vec<String>> {
    if threads <= 1 || texts.len() < 1024 {
        return texts
            .iter()
            .map(|t| crate::tokenize::tokenize(t.as_ref()))
            .collect();
    }
    let mut out: Vec<Vec<Vec<String>>> = Vec::new();
    let chunk = texts.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = texts
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .map(|t| crate::tokenize::tokenize(t.as_ref()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("tokenizer thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Intern, tag and parse `token_lists`, appending one [`Sentence`] per list
/// to `sentences` (ids continue from `sentences.len()`). Interning is
/// serial — symbol numbering must follow input order — while the tag/parse
/// phase fans out over `threads` when the batch is large enough. Output is
/// identical regardless of `threads`.
fn analyze_append(
    vocab: &mut Vocab,
    base_tags: &mut Vec<crate::pos::PosTag>,
    sentences: &mut Vec<Sentence>,
    token_lists: &[Vec<String>],
    threads: usize,
) {
    let base = sentences.len();
    let sym_lists: Vec<Vec<Sym>> = token_lists
        .iter()
        .map(|toks| toks.iter().map(|t| vocab.intern(t)).collect())
        .collect();

    // Extend the per-symbol tag cache for newly interned words: the
    // context-free tag is a pure function of the string, so looking it up
    // by symbol is identical to re-deriving it per occurrence.
    for ix in base_tags.len()..vocab.len() {
        base_tags.push(Tagger::tag_word(vocab.resolve(Sym(ix as u32))));
    }
    let base_tags = &*base_tags;
    let to_sym = vocab.get("to");

    let build = |range: std::ops::Range<usize>| -> Vec<Sentence> {
        range
            .map(|i| {
                let syms = &sym_lists[i];
                let mut tags: Vec<_> = syms.iter().map(|s| base_tags[s.index()]).collect();
                Tagger::repair(&mut tags, |j| Some(syms[j]) == to_sym);
                let heads = depparse::parse(&tags);
                Sentence::new((base + i) as u32, syms.clone(), tags, heads)
            })
            .collect()
    };

    let n = token_lists.len();
    if threads <= 1 || n < 1024 {
        sentences.extend(build(0..n));
    } else {
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<Sentence>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    let build = &build;
                    scope.spawn(move || build(start..end))
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("analysis thread panicked"));
            }
        });
        for part in parts {
            sentences.extend(part);
        }
    }
}

/// Streaming corpus construction: push texts in chunks and analyze each
/// chunk as it arrives, so only one chunk's token *strings* are ever
/// alive at once — the memory high-water mark is the finished corpus plus
/// one in-flight chunk, independent of the total sentence count.
///
/// [`CorpusBuilder::finish`] yields exactly the corpus
/// [`Corpus::from_texts`] would build over the concatenation of every
/// pushed chunk: interning order, sentence ids, tags and parses are all
/// identical (interning is serial either way, and analysis is per
/// sentence).
pub struct CorpusBuilder {
    vocab: Vocab,
    sentences: Vec<Sentence>,
    base_tags: Vec<crate::pos::PosTag>,
    threads: usize,
}

impl Default for CorpusBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CorpusBuilder {
    /// A sequential builder.
    pub fn new() -> CorpusBuilder {
        Self::with_threads(1)
    }

    /// A builder whose tag/parse phase fans out over `threads` per chunk
    /// (output identical to the sequential builder).
    pub fn with_threads(threads: usize) -> CorpusBuilder {
        CorpusBuilder {
            vocab: Vocab::new(),
            sentences: Vec::new(),
            base_tags: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// Continue building from an already-analyzed corpus: pushed chunks
    /// append to its arenas (vocabulary and sentence list) exactly as if
    /// they had been part of the original build. This is the builder-side
    /// append path — `CorpusBuilder::resume(c, t).push_texts(more)` and
    /// [`Corpus::append_texts`] produce identical corpora.
    pub fn resume(corpus: Corpus, threads: usize) -> CorpusBuilder {
        let Corpus {
            vocab,
            sentences,
            base_tags,
        } = corpus;
        CorpusBuilder {
            vocab,
            sentences,
            base_tags,
            threads: threads.max(1),
        }
    }

    /// Sentences analyzed so far.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Tokenize and analyze one chunk of texts, appending to the corpus
    /// under construction.
    pub fn push_texts<I, S>(&mut self, texts: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str> + Sync,
    {
        let texts: Vec<S> = texts.into_iter().collect();
        let token_lists = tokenize_batch(&texts, self.threads);
        analyze_append(
            &mut self.vocab,
            &mut self.base_tags,
            &mut self.sentences,
            &token_lists,
            self.threads,
        );
    }

    /// The finished corpus.
    pub fn finish(self) -> Corpus {
        Corpus {
            vocab: self.vocab,
            sentences: self.sentences,
            base_tags: self.base_tags,
        }
    }
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Corpus({} sentences, {} vocab)",
            self.len(),
            self.vocab.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXTS: &[&str] = &[
        "What is the best way to get to SFO airport?",
        "Is there a bart from SFO to the hotel?",
        "What is the best way to check in there?",
        "Is Uber the fastest way to get to the airport?",
        "Would Uber Eats be the fastest way to order?",
        "What is the best way to order food from you?",
    ];

    #[test]
    fn builds_example1_corpus() {
        let c = Corpus::from_texts(TEXTS);
        assert_eq!(c.len(), 6);
        assert!(c.vocab().get("bart").is_some());
        assert!(c.vocab().get("shuttle").is_none());
        assert_eq!(c.sentence(0).id, 0);
        assert_eq!(c.text(1), "is there a bart from sfo to the hotel ?");
    }

    #[test]
    fn parallel_matches_sequential() {
        let texts: Vec<String> = (0..3000)
            .map(|i| format!("sentence number {i} goes to the airport quickly"))
            .collect();
        let seq = Corpus::from_texts(texts.iter());
        let par = Corpus::from_texts_parallel(&texts, 4);
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.vocab().len(), par.vocab().len());
        for i in 0..seq.len() as u32 {
            assert_eq!(seq.sentence(i).tokens, par.sentence(i).tokens);
            assert_eq!(seq.sentence(i).tags, par.sentence(i).tags);
            assert_eq!(seq.sentence(i).heads, par.sentence(i).heads);
        }
    }

    #[test]
    fn builder_matches_from_texts_on_concatenation() {
        let texts: Vec<String> = (0..50)
            .map(|i| format!("sentence {i} rides the bus to the airport"))
            .collect();
        let whole = Corpus::from_texts(texts.iter());
        let mut b = CorpusBuilder::new();
        for chunk in texts.chunks(7) {
            b.push_texts(chunk);
        }
        assert_eq!(b.len(), texts.len());
        let built = b.finish();
        assert_eq!(built.len(), whole.len());
        assert_eq!(built.vocab().len(), whole.vocab().len());
        for i in 0..whole.len() as u32 {
            assert_eq!(built.sentence(i).id, i);
            assert_eq!(built.sentence(i).tokens, whole.sentence(i).tokens);
            assert_eq!(built.sentence(i).tags, whole.sentence(i).tags);
            assert_eq!(built.sentence(i).heads, whole.sentence(i).heads);
            assert_eq!(built.text(i), whole.text(i));
        }
    }

    /// The append path must reproduce `from_texts` on the concatenation —
    /// sentence ids, tokens, analyses and vocabulary all identical, and
    /// the pre-append prefix untouched. This is the text-layer leg of the
    /// append-equivalence argument.
    #[test]
    fn append_texts_matches_from_texts_on_concatenation() {
        let first: Vec<String> = (0..30)
            .map(|i| format!("sentence {i} rides the bus to the airport"))
            .collect();
        let extra: Vec<String> = (0..20)
            .map(|i| format!("new arrival {i} orders a pizza margherita"))
            .collect();
        let whole = Corpus::from_texts(first.iter().chain(extra.iter()));
        let mut grown = Corpus::from_texts(first.iter());
        assert_eq!(grown.append_texts(extra.iter(), 2), extra.len());
        assert_eq!(grown.len(), whole.len());
        assert_eq!(grown.vocab().len(), whole.vocab().len());
        for i in 0..whole.len() as u32 {
            assert_eq!(grown.sentence(i).id, i);
            assert_eq!(grown.sentence(i).tokens, whole.sentence(i).tokens);
            assert_eq!(grown.sentence(i).tags, whole.sentence(i).tags);
            assert_eq!(grown.sentence(i).heads, whole.sentence(i).heads);
            assert_eq!(grown.text(i), whole.text(i));
        }
        // Empty append is a no-op.
        assert_eq!(grown.append_texts(Vec::<String>::new(), 1), 0);
        assert_eq!(grown.len(), whole.len());
        // Builder resume is the same path behind a by-value API.
        let mut b = CorpusBuilder::resume(Corpus::from_texts(first.iter()), 1);
        b.push_texts(extra.iter());
        let resumed = b.finish();
        assert_eq!(resumed.len(), whole.len());
        assert_eq!(resumed.vocab().len(), whole.vocab().len());
        for i in 0..whole.len() as u32 {
            assert_eq!(resumed.sentence(i).tokens, whole.sentence(i).tokens);
        }
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let b = CorpusBuilder::default();
        assert!(b.is_empty());
        assert!(b.finish().is_empty());
    }

    #[test]
    fn mean_len_sane() {
        let c = Corpus::from_texts(TEXTS);
        assert!(c.mean_len() > 5.0 && c.mean_len() < 15.0);
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::from_texts(Vec::<String>::new());
        assert!(c.is_empty());
        assert_eq!(c.mean_len(), 0.0);
    }
}

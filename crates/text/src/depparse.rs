//! Deterministic dependency parsing.
//!
//! Produces the head array consumed by the TreeMatch grammar. The parser is
//! a rule-based head-attachment pass (no learned model): it picks a root
//! verb, attaches modifiers to the nearest plausible head on the correct
//! side, and guarantees the result is a tree (single root, acyclic). This is
//! the SpaCy substitution described in DESIGN.md — TreeMatch only consumes
//! `(tag, head)` pairs, so a consistent deterministic parse exercises the
//! same code paths as a learned parse.
//!
//! Attachment rules (applied per token, in order):
//! * `DET`/`ADJ`/`NUM` → next `NOUN`/`PROPN` within 4 tokens, else root.
//! * `ADP` (preposition) → nearest `NOUN`/`VERB`/`PROPN` on the left, else root.
//! * `NOUN`/`PROPN`/`PRON` → preceding `ADP` if adjacent region contains one
//!   (prepositional object), else nearest `VERB` (argument), else root.
//! * `ADV`/`PART` → nearest `VERB`, else root.
//! * non-root `VERB` → root verb.
//! * `PUNCT`, `CONJ`, `X` → root.

#![allow(clippy::needless_range_loop)] // head-attachment rules index neighbors

use crate::pos::PosTag;

/// Compute the head array for a tagged sentence. `heads[i] == i` marks the
/// root. Deterministic for a given `(tokens, tags)` input.
pub fn parse(tags: &[PosTag]) -> Vec<u16> {
    let n = tags.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(n < u16::MAX as usize, "sentence too long to parse");

    let root = pick_root(tags);
    let mut heads: Vec<u16> = vec![root as u16; n];
    heads[root] = root as u16;

    for i in 0..n {
        if i == root {
            continue;
        }
        let h = match tags[i] {
            PosTag::Det | PosTag::Adj | PosTag::Num => {
                next_matching(tags, i, 4, &[PosTag::Noun, PosTag::Propn]).unwrap_or(root)
            }
            PosTag::Adp => prev_matching(tags, i, n, &[PosTag::Noun, PosTag::Propn, PosTag::Verb])
                .unwrap_or(root),
            PosTag::Noun | PosTag::Propn | PosTag::Pron => attach_nominal(tags, i, root),
            PosTag::Adv | PosTag::Part => nearest_verb(tags, i).unwrap_or(root),
            PosTag::Verb => root,
            PosTag::Punct | PosTag::Conj | PosTag::X => root,
        };
        heads[i] = if h == i { root as u16 } else { h as u16 };
    }

    break_cycles(&mut heads, root);
    heads
}

/// Root selection: first main verb; prefer a non-auxiliary-looking verb
/// (one not immediately followed by another verb); fall back to the first
/// verb, then the first content word, then token 0.
fn pick_root(tags: &[PosTag]) -> usize {
    let n = tags.len();
    for i in 0..n {
        if tags[i] == PosTag::Verb && tags.get(i + 1).copied() != Some(PosTag::Verb) {
            return i;
        }
    }
    for i in 0..n {
        if tags[i] == PosTag::Verb {
            return i;
        }
    }
    for i in 0..n {
        if tags[i].is_content() {
            return i;
        }
    }
    0
}

fn next_matching(tags: &[PosTag], from: usize, window: usize, want: &[PosTag]) -> Option<usize> {
    let end = (from + 1 + window).min(tags.len());
    (from + 1..end).find(|&j| want.contains(&tags[j]))
}

fn prev_matching(tags: &[PosTag], from: usize, window: usize, want: &[PosTag]) -> Option<usize> {
    let start = from.saturating_sub(window);
    (start..from).rev().find(|&j| want.contains(&tags[j]))
}

fn nearest_verb(tags: &[PosTag], from: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (j, &t) in tags.iter().enumerate() {
        if t == PosTag::Verb && j != from {
            match best {
                Some(b) if from.abs_diff(b) <= from.abs_diff(j) => {}
                _ => best = Some(j),
            }
        }
    }
    best
}

/// Nominals become prepositional objects when a preposition sits within the
/// two tokens to their left (allowing one determiner/adjective in between);
/// otherwise they attach to the nearest verb.
fn attach_nominal(tags: &[PosTag], i: usize, root: usize) -> usize {
    for back in 1..=3usize {
        let Some(j) = i.checked_sub(back) else { break };
        match tags[j] {
            PosTag::Adp => return j,
            // Determiner-like material between a preposition and its object,
            // including possessive pronouns ("to our hotel").
            PosTag::Det | PosTag::Adj | PosTag::Num | PosTag::Pron => continue,
            _ => break,
        }
    }
    nearest_verb(tags, i).unwrap_or(root)
}

/// The per-token rules can in principle produce small cycles (e.g. an ADP
/// attaching right to a NOUN that attaches left to the same ADP). Any token
/// on a cycle that does not reach the root is re-attached to the root.
fn break_cycles(heads: &mut [u16], root: usize) {
    let n = heads.len();
    for start in 0..n {
        let mut cur = start;
        let mut steps = 0;
        loop {
            let h = heads[cur] as usize;
            if cur == root || h == cur {
                break;
            }
            if steps > n {
                heads[start] = root as u16;
                break;
            }
            cur = h;
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::Tagger;

    fn parse_words(words: &[&str]) -> (Vec<PosTag>, Vec<u16>) {
        let tags = Tagger::tag(words);
        let heads = parse(&tags);
        (tags, heads)
    }

    #[test]
    fn figure3_like_parse() {
        // "uber is the best way to our hotel" — Figure 3 shape: "is" root,
        // "uber" and "way" under it, "the"/"best" under "way", "hotel" under
        // "to", "to" under "way".
        let words = ["uber", "is", "the", "best", "way", "to", "our", "hotel"];
        let (_, heads) = parse_words(&words);
        let is = 1;
        assert_eq!(heads[is] as usize, is, "'is' is root");
        assert_eq!(heads[0] as usize, is, "'uber' attaches to root verb");
        assert_eq!(heads[4] as usize, is, "'way' attaches to root verb");
        assert_eq!(heads[2] as usize, 4, "'the' -> 'way'");
        assert_eq!(heads[3] as usize, 4, "'best' -> 'way'");
        assert_eq!(heads[5] as usize, 4, "'to' -> 'way'");
        assert_eq!(heads[7] as usize, 5, "'hotel' -> 'to'");
    }

    #[test]
    fn always_a_tree() {
        // Every token must reach the root; exactly one self-loop.
        for words in [
            vec![
                "what", "is", "the", "best", "way", "to", "get", "to", "sfo", "airport", "?",
            ],
            vec![
                "is", "there", "a", "bart", "from", "sfo", "to", "the", "hotel", "?",
            ],
            vec!["the"],
            vec!["?", "?", "?"],
            vec!["shuttle", "to", "the", "airport"],
        ] {
            let (_, heads) = parse_words(&words);
            let roots = heads
                .iter()
                .enumerate()
                .filter(|(i, &h)| *i == h as usize)
                .count();
            assert_eq!(roots, 1, "words={words:?} heads={heads:?}");
            for start in 0..heads.len() {
                let mut cur = start;
                for _ in 0..=heads.len() {
                    let h = heads[cur] as usize;
                    if h == cur {
                        break;
                    }
                    cur = h;
                }
                assert_eq!(heads[cur] as usize, cur, "token {start} must reach root");
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(parse(&[]).is_empty());
    }

    #[test]
    fn prepositional_object_attaches_to_preposition() {
        // "shuttle to the airport": "airport" under "to".
        let words = ["shuttle", "to", "the", "airport"];
        let (tags, heads) = parse_words(&words);
        // "to" here is ADP (followed by DET, not VERB).
        assert_eq!(tags[1], PosTag::Adp);
        assert_eq!(heads[3] as usize, 1);
    }
}

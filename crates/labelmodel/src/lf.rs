//! Labeling-function vote matrix.

/// A single labeling-function vote on one item.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(i8)]
pub enum Vote {
    Abstain = 0,
    Positive = 1,
    Negative = -1,
}

impl Vote {
    #[inline]
    pub fn from_i8(v: i8) -> Vote {
        match v {
            1 => Vote::Positive,
            -1 => Vote::Negative,
            _ => Vote::Abstain,
        }
    }
}

/// Dense item × LF vote matrix.
#[derive(Clone, Debug)]
pub struct LfMatrix {
    n_items: usize,
    n_lfs: usize,
    /// Row-major `n_items × n_lfs`.
    votes: Vec<i8>,
}

impl LfMatrix {
    pub fn new(n_items: usize, n_lfs: usize) -> LfMatrix {
        LfMatrix {
            n_items,
            n_lfs,
            votes: vec![0; n_items * n_lfs],
        }
    }

    /// Build from positive-voting rule coverages: LF `j` labels every item
    /// of `coverages[j]` positive and abstains elsewhere (Darwin's rules
    /// capture positives; negatives come from abstention mass).
    pub fn from_coverages(n_items: usize, coverages: &[&[u32]]) -> LfMatrix {
        let mut m = LfMatrix::new(n_items, coverages.len());
        for (j, cov) in coverages.iter().enumerate() {
            for &i in *cov {
                m.set(i as usize, j, Vote::Positive);
            }
        }
        m
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub fn n_lfs(&self) -> usize {
        self.n_lfs
    }

    #[inline]
    pub fn get(&self, item: usize, lf: usize) -> Vote {
        Vote::from_i8(self.votes[item * self.n_lfs + lf])
    }

    #[inline]
    pub fn set(&mut self, item: usize, lf: usize, v: Vote) {
        self.votes[item * self.n_lfs + lf] = v as i8;
    }

    /// Votes for one item.
    pub fn row(&self, item: usize) -> impl Iterator<Item = Vote> + '_ {
        self.votes[item * self.n_lfs..(item + 1) * self.n_lfs]
            .iter()
            .map(|&v| Vote::from_i8(v))
    }

    /// Fraction of items with at least one non-abstain vote.
    pub fn coverage(&self) -> f64 {
        if self.n_items == 0 {
            return 0.0;
        }
        let covered = (0..self.n_items)
            .filter(|&i| self.row(i).any(|v| v != Vote::Abstain))
            .count();
        covered as f64 / self.n_items as f64
    }

    /// Mean pairwise overlap: fraction of items where both LFs vote.
    pub fn overlap(&self, a: usize, b: usize) -> f64 {
        if self.n_items == 0 {
            return 0.0;
        }
        let both = (0..self.n_items)
            .filter(|&i| self.get(i, a) != Vote::Abstain && self.get(i, b) != Vote::Abstain)
            .count();
        both as f64 / self.n_items as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coverages_sets_positive_votes() {
        let m = LfMatrix::from_coverages(5, &[&[0, 2], &[2, 3]]);
        assert_eq!(m.get(0, 0), Vote::Positive);
        assert_eq!(m.get(2, 0), Vote::Positive);
        assert_eq!(m.get(2, 1), Vote::Positive);
        assert_eq!(m.get(1, 0), Vote::Abstain);
        assert_eq!(m.n_items(), 5);
        assert_eq!(m.n_lfs(), 2);
    }

    #[test]
    fn coverage_and_overlap() {
        let m = LfMatrix::from_coverages(4, &[&[0, 1], &[1, 2]]);
        assert!((m.coverage() - 0.75).abs() < 1e-9);
        assert!((m.overlap(0, 1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn set_get_roundtrip_all_votes() {
        let mut m = LfMatrix::new(2, 2);
        m.set(0, 0, Vote::Negative);
        m.set(0, 1, Vote::Positive);
        assert_eq!(m.get(0, 0), Vote::Negative);
        assert_eq!(m.get(0, 1), Vote::Positive);
        assert_eq!(m.get(1, 0), Vote::Abstain);
        let row: Vec<Vote> = m.row(0).collect();
        assert_eq!(row, vec![Vote::Negative, Vote::Positive]);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = LfMatrix::new(0, 3);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.overlap(0, 1), 0.0);
    }
}

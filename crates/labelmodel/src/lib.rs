//! Snorkel-style generative label modeling (de-noising weak labels).
//!
//! Darwin forwards its discovered heuristics to Snorkel "to train a high
//! precision classifier" (paper §2), and §4.5 Table 2 compares a classifier
//! trained directly on Darwin's labels against one trained on
//! Snorkel-de-noised labels. This crate implements the core of that
//! de-noising step: labeling functions vote (or abstain) per item, and an
//! EM-trained generative model with conditionally independent LFs infers
//! per-LF reliabilities and a posterior probability per item.
//!
//! * [`lf::LfMatrix`] — the item × LF vote matrix,
//! * [`majority`] — majority-vote baseline,
//! * [`generative::GenerativeModel`] — the EM model.

pub mod generative;
pub mod lf;
pub mod majority;

pub use generative::{GenerativeConfig, GenerativeModel};
pub use lf::{LfMatrix, Vote};
pub use majority::majority_vote;

//! The EM-trained independent generative label model.
//!
//! Snorkel's core modeling assumption: labeling functions are conditionally
//! independent given the true label `y ∈ {0,1}`. Each LF `j` emits a vote
//! `λ ∈ {abstain, +, −}` according to a per-class categorical
//! `θ_j[y][λ]`; the class prior is `π`. EM alternates:
//!
//! * **E-step** — posterior `p_i = P(y_i=1 | λ_i·)` by Bayes in log space,
//! * **M-step** — re-estimate `θ` and `π` from the soft counts, with
//!   Laplace smoothing.
//!
//! The observed-data log-likelihood is non-decreasing across iterations
//! (a property test asserts this).

#![allow(clippy::needless_range_loop)] // index math mirrors the tensor strides

use crate::lf::{LfMatrix, Vote};

/// EM configuration.
#[derive(Clone, Debug)]
pub struct GenerativeConfig {
    pub iterations: usize,
    /// Initial class prior P(y = 1).
    pub init_prior: f64,
    /// Laplace smoothing mass added to every soft count.
    pub smoothing: f64,
    /// Keep the class prior fixed at `init_prior` instead of re-estimating
    /// it. With positive-only labeling functions the likelihood has a
    /// degenerate "everything is negative" optimum; fixing the class
    /// balance (as Snorkel does when it is known) avoids the collapse.
    pub fix_prior: bool,
}

impl Default for GenerativeConfig {
    fn default() -> Self {
        GenerativeConfig {
            iterations: 25,
            init_prior: 0.3,
            smoothing: 1.0,
            fix_prior: false,
        }
    }
}

/// Fitted model: per-LF emission tables, prior, and item posteriors.
pub struct GenerativeModel {
    /// `theta[j][y][v]` with v ∈ {0 abstain, 1 positive, 2 negative}.
    theta: Vec<[[f64; 3]; 2]>,
    prior: f64,
    posteriors: Vec<f64>,
    log_likelihood: f64,
}

#[inline]
fn vote_slot(v: Vote) -> usize {
    match v {
        Vote::Abstain => 0,
        Vote::Positive => 1,
        Vote::Negative => 2,
    }
}

impl GenerativeModel {
    /// Fit by EM.
    pub fn fit(m: &LfMatrix, cfg: &GenerativeConfig) -> GenerativeModel {
        let (n, k) = (m.n_items(), m.n_lfs());
        // Initialize: LFs are assumed better than random — a positive vote
        // is likelier under y=1 than under y=0.
        // theta[j][0] is the y=0 row (positive votes rare), theta[j][1]
        // the y=1 row (positive votes common).
        let mut theta: Vec<[[f64; 3]; 2]> = vec![[[0.85, 0.05, 0.10], [0.45, 0.50, 0.05]]; k];
        let mut prior = cfg.init_prior.clamp(1e-4, 1.0 - 1e-4);
        let mut post = vec![prior; n];

        let e_step = |theta: &Vec<[[f64; 3]; 2]>, prior: f64, post: &mut Vec<f64>| -> f64 {
            let mut ll = 0.0;
            for i in 0..n {
                let mut lp1 = prior.ln();
                let mut lp0 = (1.0 - prior).ln();
                for (j, v) in m.row(i).enumerate() {
                    let s = vote_slot(v);
                    lp1 += theta[j][1][s].ln();
                    lp0 += theta[j][0][s].ln();
                }
                let mx = lp1.max(lp0);
                let z = (lp1 - mx).exp() + (lp0 - mx).exp();
                post[i] = (lp1 - mx).exp() / z;
                ll += mx + z.ln();
            }
            ll
        };

        for _ in 0..cfg.iterations.max(1) {
            let _ = e_step(&theta, prior, &mut post);
            // M-step with Laplace smoothing.
            let s = cfg.smoothing;
            let mut counts = vec![[[s; 3]; 2]; k];
            let mut pos_mass = s;
            let mut neg_mass = s;
            for i in 0..n {
                pos_mass += post[i];
                neg_mass += 1.0 - post[i];
                for (j, v) in m.row(i).enumerate() {
                    let slot = vote_slot(v);
                    counts[j][1][slot] += post[i];
                    counts[j][0][slot] += 1.0 - post[i];
                }
            }
            if !cfg.fix_prior {
                prior = (pos_mass / (pos_mass + neg_mass)).clamp(1e-4, 1.0 - 1e-4);
            }
            for j in 0..k {
                for y in 0..2 {
                    let tot: f64 = counts[j][y].iter().sum();
                    for v in 0..3 {
                        theta[j][y][v] = (counts[j][y][v] / tot).clamp(1e-6, 1.0);
                    }
                }
            }
        }
        // Final E-step so posteriors and likelihood reflect the final
        // parameters (not the ones from before the last M-step).
        let ll = e_step(&theta, prior, &mut post);

        GenerativeModel {
            theta,
            prior,
            posteriors: post,
            log_likelihood: ll,
        }
    }

    /// Posterior P(y=1) per item.
    pub fn posteriors(&self) -> &[f64] {
        &self.posteriors
    }

    /// Learned class prior.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Final observed-data log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Estimated precision of LF `j`'s positive votes:
    /// `P(y=1 | λ_j=+1)` under the learned model.
    pub fn lf_precision(&self, j: usize) -> f64 {
        let p_fire_pos = self.theta[j][1][1] * self.prior;
        let p_fire_neg = self.theta[j][0][1] * (1.0 - self.prior);
        if p_fire_pos + p_fire_neg == 0.0 {
            0.0
        } else {
            p_fire_pos / (p_fire_pos + p_fire_neg)
        }
    }

    /// Hard labels at a threshold.
    pub fn labels(&self, threshold: f64) -> Vec<bool> {
        self.posteriors.iter().map(|&p| p >= threshold).collect()
    }

    /// Observed-data log-likelihood of `m` under the current parameters
    /// (for convergence tests).
    pub fn evaluate_ll(&self, m: &LfMatrix) -> f64 {
        let mut ll = 0.0;
        for i in 0..m.n_items() {
            let mut lp1 = self.prior.ln();
            let mut lp0 = (1.0 - self.prior).ln();
            for (j, v) in m.row(i).enumerate() {
                let s = vote_slot(v);
                lp1 += self.theta[j][1][s].ln();
                lp0 += self.theta[j][0][s].ln();
            }
            let mx = lp1.max(lp0);
            ll += mx + ((lp1 - mx).exp() + (lp0 - mx).exp()).ln();
        }
        ll
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic matrix: 100 items, first 30 positive. Three good LFs fire
    /// mostly on positives, one noisy LF fires everywhere.
    fn synth() -> (LfMatrix, Vec<bool>) {
        let n = 100;
        let truth: Vec<bool> = (0..n).map(|i| i < 30).collect();
        let mut m = LfMatrix::new(n, 4);
        for i in 0..n {
            // Good LFs: fire on positives with prob ~deterministic pattern.
            if truth[i] {
                if i % 3 != 0 {
                    m.set(i, 0, Vote::Positive);
                }
                if i % 4 != 0 {
                    m.set(i, 1, Vote::Positive);
                }
                if i % 5 != 0 {
                    m.set(i, 2, Vote::Positive);
                }
            } else if i % 17 == 0 {
                m.set(i, 0, Vote::Positive); // rare false positive
            }
            // Noisy LF: fires on every 2nd item regardless of class.
            if i % 2 == 0 {
                m.set(i, 3, Vote::Positive);
            }
        }
        (m, truth)
    }

    #[test]
    fn posteriors_in_unit_interval() {
        let (m, _) = synth();
        let g = GenerativeModel::fit(&m, &GenerativeConfig::default());
        assert!(g
            .posteriors()
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()));
    }

    #[test]
    fn recovers_synthetic_labels() {
        let (m, truth) = synth();
        let g = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let labels = g.labels(0.5);
        let acc = labels.iter().zip(&truth).filter(|(a, b)| a == b).count();
        assert!(acc >= 90, "accuracy {acc}/100");
    }

    #[test]
    fn good_lfs_rank_above_noisy_lf() {
        let (m, _) = synth();
        let g = GenerativeModel::fit(&m, &GenerativeConfig::default());
        for j in 0..3 {
            assert!(
                g.lf_precision(j) > g.lf_precision(3),
                "LF{j} precision {} vs noisy {}",
                g.lf_precision(j),
                g.lf_precision(3)
            );
        }
    }

    #[test]
    fn em_improves_likelihood_with_iterations() {
        let (m, _) = synth();
        let short = GenerativeModel::fit(
            &m,
            &GenerativeConfig {
                iterations: 1,
                ..Default::default()
            },
        );
        let long = GenerativeModel::fit(
            &m,
            &GenerativeConfig {
                iterations: 30,
                ..Default::default()
            },
        );
        assert!(
            long.log_likelihood() >= short.log_likelihood() - 1e-6,
            "{} vs {}",
            long.log_likelihood(),
            short.log_likelihood()
        );
    }

    #[test]
    fn all_abstain_items_get_near_prior() {
        // Nobody votes. With enough items (so Laplace smoothing does not
        // dominate) the per-class abstain rates converge to each other and
        // abstentions carry no evidence: posterior ≈ prior, same for all.
        let m = LfMatrix::new(200, 2);
        let cfg = GenerativeConfig {
            smoothing: 0.01,
            ..Default::default()
        };
        let g = GenerativeModel::fit(&m, &cfg);
        for &p in g.posteriors() {
            assert!((p - g.prior()).abs() < 0.02, "p={p} prior={}", g.prior());
        }
        let first = g.posteriors()[0];
        assert!(g.posteriors().iter().all(|&p| (p - first).abs() < 1e-12));
    }

    #[test]
    fn evaluate_ll_matches_final_ll() {
        let (m, _) = synth();
        let g = GenerativeModel::fit(&m, &GenerativeConfig::default());
        let recomputed = g.evaluate_ll(&m);
        assert!(
            (recomputed - g.log_likelihood()).abs() < 1e-9,
            "{recomputed} vs {}",
            g.log_likelihood()
        );
    }
}

//! Majority-vote labeling (the de-noising baseline).

use crate::lf::{LfMatrix, Vote};

/// Probabilistic labels by vote counting: items with more positive than
/// negative votes get 1.0, ties get 0.5, more negative get 0.0; items where
/// every LF abstains fall back to `prior`.
pub fn majority_vote(m: &LfMatrix, prior: f64) -> Vec<f64> {
    (0..m.n_items())
        .map(|i| {
            let mut pos = 0i32;
            let mut neg = 0i32;
            for v in m.row(i) {
                match v {
                    Vote::Positive => pos += 1,
                    Vote::Negative => neg += 1,
                    Vote::Abstain => {}
                }
            }
            if pos == 0 && neg == 0 {
                prior
            } else if pos > neg {
                1.0
            } else if neg > pos {
                0.0
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_votes() {
        let mut m = LfMatrix::new(4, 3);
        // item 0: ++- -> 1.0; item 1: +-- -> 0.0; item 2: +- -> 0.5; item 3: none -> prior.
        m.set(0, 0, Vote::Positive);
        m.set(0, 1, Vote::Positive);
        m.set(0, 2, Vote::Negative);
        m.set(1, 0, Vote::Positive);
        m.set(1, 1, Vote::Negative);
        m.set(1, 2, Vote::Negative);
        m.set(2, 0, Vote::Positive);
        m.set(2, 1, Vote::Negative);
        let p = majority_vote(&m, 0.1);
        assert_eq!(p, vec![1.0, 0.0, 0.5, 0.1]);
    }
}

//! Cross-crate integration tests: the full Darwin pipeline over generated
//! datasets, exercising text analysis, indexing, classification, traversal
//! and evaluation together.

use darwin::baselines::{HighC, HighP, Snuba, SnubaConfig};
use darwin::core::TraversalKind;
use darwin::datasets::{cause_effect, directions};
use darwin::prelude::*;
use darwin_testkit::indexed;

fn directions_prepared() -> (darwin::datasets::Dataset, IndexSet) {
    let data = directions::generate(3000, 11);
    let index = indexed(&data.corpus, 5);
    (data, index)
}

#[test]
fn hybrid_run_reaches_high_coverage_on_directions() {
    let (data, index) = directions_prepared();
    let cfg = DarwinConfig {
        budget: 40,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);
    let recall = coverage(&run.positives, &data.labels);
    assert!(recall >= 0.7, "recall {recall}");
    // Every accepted rule is actually precise under the ground truth.
    for rule in &run.accepted {
        let cov = rule.coverage(&data.corpus);
        let pos = cov.iter().filter(|&&i| data.labels[i as usize]).count();
        assert!(
            pos as f64 / cov.len().max(1) as f64 >= 0.8,
            "{} is imprecise",
            rule.display(data.corpus.vocab())
        );
    }
}

#[test]
fn p_equals_union_of_accepted_rules() {
    let (data, index) = directions_prepared();
    let cfg = DarwinConfig {
        budget: 15,
        n_candidates: 2000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);
    let mut union: Vec<u32> = run
        .accepted
        .iter()
        .flat_map(|h| h.coverage(&data.corpus))
        .collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(union, run.positives);
}

#[test]
fn budget_is_a_hard_cap_for_every_strategy() {
    let (data, index) = directions_prepared();
    for kind in [
        TraversalKind::Local,
        TraversalKind::Universal,
        TraversalKind::Hybrid,
    ] {
        let cfg = DarwinConfig {
            budget: 7,
            n_candidates: 1000,
            traversal: kind,
            ..Default::default()
        };
        let darwin = Darwin::new(&data.corpus, &index, cfg);
        let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
        let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        assert!(run.questions() <= 7, "{kind:?} asked {}", run.questions());
        assert_eq!(oracle.queries(), run.questions());
    }
}

#[test]
fn noisy_annotator_still_makes_progress() {
    let (data, index) = directions_prepared();
    let cfg = DarwinConfig {
        budget: 30,
        n_candidates: 2000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
    let mut annotator = SampledAnnotatorOracle::new(&data.labels, 5, 17);
    let run = darwin.run(Seed::Rule(seed), &mut annotator);
    let recall = coverage(&run.positives, &data.labels);
    let precision = run
        .positives
        .iter()
        .filter(|&&i| data.labels[i as usize])
        .count() as f64
        / run.positives.len().max(1) as f64;
    assert!(recall > 0.3, "recall {recall}");
    assert!(precision > 0.6, "precision {precision}");
}

#[test]
fn highp_and_highc_plug_into_the_pipeline() {
    let (data, index) = directions_prepared();
    let cfg = DarwinConfig {
        budget: 12,
        n_candidates: 2000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();

    let mut o1 = GroundTruthOracle::new(&data.labels, 0.8);
    let hp = darwin.run_with(Seed::Rule(seed.clone()), &mut o1, |_| Box::new(HighP));
    let mut o2 = GroundTruthOracle::new(&data.labels, 0.8);
    let hc = darwin.run_with(Seed::Rule(seed), &mut o2, |_| Box::new(HighC));
    // HighC asks broad rules and gets rejected more often than HighP.
    let rej = |r: &RunResult| r.trace.iter().filter(|t| !t.answer).count();
    assert!(
        rej(&hc) >= rej(&hp),
        "HighC {} vs HighP {}",
        rej(&hc),
        rej(&hp)
    );
}

#[test]
fn figure11_cause_effect_recovers_triggered_by() {
    let data = cause_effect::generate(4000, 5);
    let index = indexed(&data.corpus, 5);
    let cfg = DarwinConfig {
        budget: 40,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, "has been caused by").unwrap();
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);
    // The run must generalize beyond the seed family: at least one accepted
    // rule anchored on a non-"caused" trigger.
    let vocab = data.corpus.vocab();
    let texts: Vec<String> = run.accepted.iter().map(|h| h.display(vocab)).collect();
    assert!(
        texts
            .iter()
            .any(|t| !t.contains("caused") && !t.contains("been")),
        "no generalization beyond the seed family: {texts:?}"
    );
    assert!(coverage(&run.positives, &data.labels) > 0.5);
}

#[test]
fn snuba_misses_what_darwin_finds_with_biased_seed() {
    let data = directions::generate(5000, 3);
    let index = indexed(&data.corpus, 5);
    let biased = data.biased_seed_sample(400, "shuttle", 2);

    let snuba = Snuba::new(SnubaConfig::default()).run(&data.corpus, &biased, &data.labels);
    let snuba_cov = coverage(&snuba.positives, &data.labels);

    let pos: Vec<u32> = biased
        .iter()
        .copied()
        .filter(|&i| data.labels[i as usize])
        .collect();
    let cfg = DarwinConfig {
        budget: 60,
        n_candidates: 3000,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Positives(pos), &mut oracle);
    let darwin_cov = coverage(&run.positives, &data.labels);

    assert!(
        darwin_cov > snuba_cov + 0.1,
        "darwin {darwin_cov} should clearly beat snuba {snuba_cov} on biased seeds"
    );
}

use darwin::core::RunResult;

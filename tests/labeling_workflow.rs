//! Integration tests for the weak-supervision tail of the pipeline:
//! discovered rules → label model → classifier, plus the baselines'
//! end-to-end contracts.

use darwin::baselines::{ActiveLearning, KeywordSampling};
use darwin::datasets::{musicians, tweets};
use darwin::labelmodel::{majority_vote, GenerativeConfig, GenerativeModel, LfMatrix, Vote};
use darwin::prelude::*;
use darwin_testkit::indexed;

#[test]
fn rules_to_labelmodel_to_classifier() {
    let data = musicians::generate(3000, 9);
    let index = indexed(&data.corpus, 5);
    let cfg = DarwinConfig {
        budget: 30,
        n_candidates: 2500,
        ..Default::default()
    };
    let darwin = Darwin::new(&data.corpus, &index, cfg);
    let seed = Heuristic::phrase(&data.corpus, "composer").unwrap();
    let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
    let run = darwin.run(Seed::Rule(seed), &mut oracle);
    assert!(run.accepted.len() >= 2);

    // Build the LF matrix from accepted rules and de-noise. Darwin's
    // accepted rules are positive-only labeling functions, so the class
    // prior must be fixed — a free prior lets EM collapse to the
    // "everything is negative" optimum (see `GenerativeConfig::fix_prior`).
    let coverages: Vec<Vec<u32>> = run
        .accepted
        .iter()
        .map(|h| h.coverage(&data.corpus))
        .collect();
    let refs: Vec<&[u32]> = coverages.iter().map(|c| c.as_slice()).collect();
    let matrix = LfMatrix::from_coverages(data.len(), &refs);
    let model = GenerativeModel::fit(
        &matrix,
        &GenerativeConfig {
            fix_prior: true,
            ..Default::default()
        },
    );

    // De-noised positives remain mostly correct.
    let denoised: Vec<u32> = model
        .posteriors()
        .iter()
        .enumerate()
        .filter(|(_, &p)| p >= 0.5)
        .map(|(i, _)| i as u32)
        .collect();
    assert!(!denoised.is_empty());
    let precision = denoised
        .iter()
        .filter(|&&i| data.labels[i as usize])
        .count() as f64
        / denoised.len() as f64;
    assert!(precision >= 0.7, "precision {precision}");

    // Majority vote agrees with the model on clear cases (every rule is a
    // positive voter, so vote=1 wherever any rule fires).
    let mv = majority_vote(&matrix, 0.1);
    for (i, &v) in mv.iter().enumerate() {
        if v == 1.0 {
            assert!(matrix.row(i).any(|x| x == Vote::Positive));
        }
    }

    // Train the downstream classifier on de-noised labels.
    let emb = darwin::text::Embeddings::train(&data.corpus, &Default::default());
    let mut clf = darwin::classifier::ClassifierKind::logreg().build(&emb, 1);
    let negs: Vec<u32> = (0..data.len() as u32)
        .filter(|id| denoised.binary_search(id).is_err())
        .step_by(7)
        .collect();
    clf.fit(&data.corpus, &emb, &denoised, &negs);
    let mut scores = Vec::new();
    clf.predict_all(&data.corpus, &emb, &mut scores);
    let f1 = f1_score(&scores, &data.labels, 0.5);
    assert!(f1 > 0.5, "downstream F1 {f1}");
}

#[test]
fn active_learning_and_keyword_sampling_contracts() {
    let data = tweets::generate(1200, 4);
    let emb = darwin::text::Embeddings::train(&data.corpus, &Default::default());

    let seed: Vec<u32> = data.seed_sample(20, 1);
    let al = ActiveLearning::default().run(&data.corpus, &emb, &seed, &data.labels, 30);
    assert_eq!(al.labeled.len(), seed.len() + 30);
    assert!(al.f1_curve.xs.iter().all(|&x| x <= 30));

    let ks = KeywordSampling::default().run(&data.corpus, &emb, &data.keywords, &data.labels, 30);
    assert!(ks.pool_size > 0);
    assert!(ks.labeled.len() <= 30);
    // Labeled instances all contain a keyword.
    let keys: Vec<_> = data
        .keywords
        .iter()
        .filter_map(|k| data.corpus.vocab().get(k))
        .collect();
    for &id in &ks.labeled {
        assert!(data
            .corpus
            .sentence(id)
            .tokens
            .iter()
            .any(|t| keys.contains(t)));
    }
}

#[test]
fn tweets_other_intents_also_work() {
    use darwin::datasets::tweets::{generate_intent, Intent};
    for intent in [Intent::Travel, Intent::Career] {
        let data = generate_intent(1500, intent, 8);
        let index = indexed(&data.corpus, 4);
        let cfg = DarwinConfig {
            budget: 25,
            n_candidates: 2000,
            ..Default::default()
        };
        let darwin = Darwin::new(&data.corpus, &index, cfg);
        let seed = Heuristic::phrase(&data.corpus, data.seed_rules[0]).unwrap();
        let mut oracle = GroundTruthOracle::new(&data.labels, 0.8);
        let run = darwin.run(Seed::Rule(seed), &mut oracle);
        let recall = coverage(&run.positives, &data.labels);
        assert!(recall > 0.4, "{intent:?} recall {recall}");
    }
}

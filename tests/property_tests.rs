//! Property-based tests over the core data structures and invariants
//! (DESIGN.md §5), plus the incremental benefit engine's delta-maintenance
//! contract.

use darwin::core::benefit::benefit;
use darwin::core::{BenefitStore, ShardedBenefitStore};
use darwin::grammar::{Heuristic, PhraseElem, PhrasePattern, TreePattern};
use darwin::index::{IdSet, IndexConfig, IndexSet, RuleRef, ShardMap};
use darwin::text::{Corpus, PosTag, Sym};
use darwin_testkit::strategies::{corpus_texts as corpus_strategy, sentence, word};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..Default::default() })]

    /// Index postings must exactly equal brute-force coverage for every
    /// indexed rule, and child coverage must be a subset of the parent's.
    #[test]
    fn index_postings_equal_bruteforce(texts in corpus_strategy()) {
        let corpus = Corpus::from_texts(texts.iter());
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        for rule in index.all_rules().take(400) {
            let h = index.heuristic(rule);
            let brute = h.coverage(&corpus);
            prop_assert_eq!(index.coverage(rule), &brute[..],
                "rule {}", h.display(corpus.vocab()));
            for parent in index.parents(rule) {
                let pc = index.coverage(parent);
                for s in index.coverage(rule) {
                    prop_assert!(
                        parent == darwin::index::RuleRef::Root || pc.contains(s),
                        "parent coverage must contain child coverage"
                    );
                }
            }
        }
    }

    /// Every phrase the sketch enumerates matches its source sentence.
    #[test]
    fn sketch_patterns_match_source(texts in corpus_strategy()) {
        let corpus = Corpus::from_texts(texts.iter());
        for s in corpus.sentences() {
            for gram in darwin::index::sketch::phrase_sketch(s, 4) {
                let p = PhrasePattern::from_tokens(gram);
                prop_assert!(p.matches(s));
            }
            for pat in darwin::index::sketch::tree_sketch(s, &Default::default()) {
                prop_assert!(pat.matches(s), "{}", pat.display(corpus.vocab()));
            }
        }
    }

    /// Phrase parse/display round-trips.
    #[test]
    fn phrase_roundtrip(texts in corpus_strategy(), pattern in prop::collection::vec(word(), 1..5)) {
        let corpus = Corpus::from_texts(texts.iter());
        // Only use words that are in the vocabulary.
        let usable: Vec<&String> = pattern.iter()
            .filter(|w| corpus.vocab().get(w).is_some())
            .collect();
        if usable.is_empty() {
            return Ok(());
        }
        let text = usable.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ");
        let p = PhrasePattern::parse(corpus.vocab(), &text).unwrap();
        prop_assert_eq!(p.display(corpus.vocab()), text);
    }

    /// The dependency parse is always a tree: one root, all nodes reach it.
    #[test]
    fn parse_is_always_a_tree(text in sentence()) {
        let corpus = Corpus::from_texts([text]);
        let s = corpus.sentence(0);
        let roots = s.heads.iter().enumerate().filter(|(i, &h)| *i == h as usize).count();
        prop_assert_eq!(roots, 1);
        for start in 0..s.len() {
            let mut cur = start;
            for _ in 0..=s.len() {
                let h = s.heads[cur] as usize;
                if h == cur { break; }
                cur = h;
            }
            prop_assert_eq!(s.heads[cur] as usize, cur);
        }
    }

    /// IdSet agrees with a reference HashSet implementation.
    #[test]
    fn idset_matches_reference(ops in prop::collection::vec((0u32..500, prop::bool::ANY), 0..200)) {
        let mut ours = IdSet::with_universe(500);
        let mut reference = std::collections::HashSet::new();
        for (id, insert) in ops {
            if insert {
                prop_assert_eq!(ours.insert(id), reference.insert(id));
            } else {
                prop_assert_eq!(ours.contains(id), reference.contains(&id));
            }
        }
        prop_assert_eq!(ours.len(), reference.len());
        let mut sorted: Vec<u32> = reference.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(ours.iter().collect::<Vec<_>>(), sorted);
    }

    /// The incremental engine's contract: after ANY random interleaving of
    /// `P` insertions and score retrains (full-epoch rebuilds and
    /// incremental patch journals alike), every tracked rule's aggregate
    /// equals a from-scratch `benefit()` recomputation, bit for bit.
    #[test]
    fn benefit_aggregates_equal_scratch_recomputation(
        texts in corpus_strategy(),
        // Each op: (sentence selector, score in centi-units, kind selector).
        ops in prop::collection::vec((0u32..1000, 0u32..100, 0u32..10), 1..60),
    ) {
        let corpus = Corpus::from_texts(texts.iter());
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let n = corpus.len();
        let mut p = IdSet::with_universe(n);
        let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.193).fract()).collect();

        let rules: Vec<RuleRef> = index.all_rules().collect();
        let mut store = BenefitStore::new();
        store.track(rules.iter().copied(), &index, &p, &scores, 1);

        for (raw_id, centi, kind) in ops {
            let id = raw_id % n as u32;
            match kind {
                // Grow P by one new id (no-op when already positive).
                0..=4 => {
                    if !p.contains(id) {
                        store.on_positives_added(&[id], &index, &scores);
                        p.insert(id);
                    }
                }
                // Incremental re-score of one sentence (a one-entry
                // ScoreCache change journal).
                5..=8 => {
                    let new = centi as f32 / 100.0;
                    let old = scores[id as usize];
                    store.on_scores_changed(&[(id, old, new)], &p, &index);
                    scores[id as usize] = new;
                }
                // Full retrain epoch: every score moves, store rebuilds.
                _ => {
                    for (i, s) in scores.iter_mut().enumerate() {
                        *s = (*s + 0.31 + i as f32 * 0.017).fract();
                    }
                    store.rebuild(&index, &p, &scores, 1);
                }
            }
        }

        for &r in &rules {
            prop_assert_eq!(
                store.benefit_of(r).unwrap(),
                benefit(index.coverage(r), &p, &scores),
                "rule {} drifted", index.heuristic(r).display(corpus.vocab())
            );
        }
    }

    /// The sharded coordinator's contract: after ANY random interleaving
    /// of deltas, the per-shard fragments merged across ANY shard count
    /// equal the global from-scratch benefit, bit for bit.
    #[test]
    fn sharded_aggregates_equal_scratch_recomputation(
        texts in corpus_strategy(),
        shards in prop::sample::select(vec![2usize, 3, 4, 7]),
        ops in prop::collection::vec((0u32..1000, 0u32..100, 0u32..10), 1..60),
    ) {
        let corpus = Corpus::from_texts(texts.iter());
        let index = IndexSet::build(&corpus, &IndexConfig::small());
        let n = corpus.len();
        let mut p = IdSet::with_universe(n);
        let mut scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.193).fract()).collect();

        let rules: Vec<RuleRef> = index.all_rules().collect();
        let mut store = ShardedBenefitStore::new(ShardMap::new(n, shards));
        store.track(&rules, &index, &p, &scores, 2).unwrap();

        for (raw_id, centi, kind) in ops {
            let id = raw_id % n as u32;
            match kind {
                0..=4 => {
                    if !p.contains(id) {
                        store.on_positives_added(&[id], &index, &scores).unwrap();
                        p.insert(id);
                    }
                }
                5..=8 => {
                    let new = centi as f32 / 100.0;
                    let old = scores[id as usize];
                    store.on_scores_changed(&[(id, old, new)], &p, &index).unwrap();
                    scores[id as usize] = new;
                }
                _ => {
                    for (i, s) in scores.iter_mut().enumerate() {
                        *s = (*s + 0.31 + i as f32 * 0.017).fract();
                    }
                    store.rebuild(&index, &p, &scores, 2).unwrap();
                }
            }
        }

        for &r in &rules {
            prop_assert_eq!(
                store.benefit_of(r).unwrap(),
                benefit(index.coverage(r), &p, &scores),
                "S={}: rule {} drifted", shards, index.heuristic(r).display(corpus.vocab())
            );
        }
    }

    /// Gap-pattern matching is monotone: adding a Star never removes matches.
    #[test]
    fn star_insertion_is_monotone(texts in corpus_strategy(), pattern in prop::collection::vec(word(), 1..4)) {
        let corpus = Corpus::from_texts(texts.iter());
        let syms: Vec<Sym> = pattern.iter().filter_map(|w| corpus.vocab().get(w)).collect();
        if syms.len() < 2 {
            return Ok(());
        }
        let tight = PhrasePattern::from_tokens(syms.clone());
        let mut elems: Vec<PhraseElem> = Vec::new();
        for (i, &s) in syms.iter().enumerate() {
            if i > 0 {
                elems.push(PhraseElem::Star);
            }
            elems.push(PhraseElem::Tok(s));
        }
        let loose = PhrasePattern { elems };
        for s in corpus.sentences() {
            if tight.matches(s) {
                prop_assert!(loose.matches(s), "loosening must preserve matches");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..Default::default() })]

    /// Shard determinism over full runs: every (shards, threads) cell of
    /// the S ∈ {1, 2, 4, 7} × T ∈ {1, 4} matrix replays the exact same
    /// question trace and lands on the exact same final positive set and
    /// scores — sharding and threading are execution details, never
    /// observable in the output.
    #[test]
    fn shard_thread_matrix_is_trace_deterministic(
        n in 200usize..320,
        dataset_seed in 0u64..1000,
    ) {
        use darwin::core::{Darwin, DarwinConfig, GroundTruthOracle, RunResult, Seed};
        use darwin::text::embed::EmbedConfig;
        use darwin::text::Embeddings;

        let (d, index) = darwin_testkit::directions_fixture(n, dataset_seed);
        let emb = Embeddings::train(
            &d.corpus,
            &EmbedConfig {
                seed: 42,
                ..Default::default()
            },
        );

        let mut reference: Option<(RunResult, String)> = None;
        for shards in [1usize, 2, 4, 7] {
            for threads in [1usize, 4] {
                let cfg = DarwinConfig {
                    budget: 6,
                    n_candidates: 400,
                    shards,
                    threads,
                    ..DarwinConfig::fast()
                };
                let darwin = Darwin::with_embeddings(&d.corpus, &index, cfg, emb.clone());
                let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
                let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
                let run = darwin.run(seed, &mut oracle);
                match &reference {
                    None => reference = Some((run, format!("S={shards} T={threads}"))),
                    Some((r, ref_label)) => {
                        let label = format!("S={shards} T={threads} vs {ref_label}");
                        prop_assert_eq!(run.trace.len(), r.trace.len(), "{}: question count", &label);
                        for (x, y) in run.trace.iter().zip(&r.trace) {
                            prop_assert_eq!(&x.rule, &y.rule, "{}: q{} rule", &label, x.question);
                            prop_assert_eq!(x.answer, y.answer, "{}: q{} answer", &label, x.question);
                            prop_assert_eq!(
                                &x.new_positive_ids, &y.new_positive_ids,
                                "{}: q{} new positives", &label, x.question
                            );
                        }
                        prop_assert_eq!(&run.positives, &r.positives, "{}: final P", &label);
                        prop_assert_eq!(&run.scores, &r.scores, "{}: final scores", &label);
                    }
                }
            }
        }
    }
}

/// Non-proptest invariants that complete the DESIGN.md §5 list.
#[test]
fn tree_term_generalization_is_sound() {
    let corpus = Corpus::from_texts(["the storm caused the fire", "lightning caused damage"]);
    let index = IndexSet::build(&corpus, &IndexConfig::small());
    let tree = index.tree_index().expect("tree enabled");
    // Any Term(tok)→Term(POS) edge must be coverage-monotone.
    for id in tree.pat_ids() {
        if let TreePattern::Term(darwin::grammar::TreeTerm::Tok(_)) = tree.pattern(id) {
            for &parent in tree.parents(id) {
                if let TreePattern::Term(darwin::grammar::TreeTerm::Pos(tag)) = tree.pattern(parent)
                {
                    assert!(PosTag::ALL.contains(&tag));
                    let pc = tree.postings(parent);
                    for s in tree.postings(id) {
                        assert!(pc.contains(s));
                    }
                }
            }
        }
    }
}

#[test]
fn heuristic_display_is_reparseable_for_index_rules() {
    let corpus = Corpus::from_texts([
        "what is the best way to get to the airport",
        "is there a shuttle to the hotel",
        "the storm caused the fire downtown",
    ]);
    let index = IndexSet::build(&corpus, &IndexConfig::small());
    for rule in index.all_rules().take(500) {
        let h = index.heuristic(rule);
        let text = h.display(corpus.vocab());
        let reparsed = match &h {
            Heuristic::Phrase(_) => Heuristic::phrase(&corpus, &text),
            Heuristic::Tree(_) => Heuristic::tree(&corpus, &text),
        };
        assert_eq!(reparsed.unwrap(), h, "{text}");
    }
}

/// Scan-based reference for [`Sentence::children`]: the head-array filter
/// scan the corpus-resident CSR adjacency replaced.
fn scan_children(heads: &[u16], i: usize) -> Vec<usize> {
    heads
        .iter()
        .enumerate()
        .filter(|(c, &h)| h as usize == i && *c != i)
        .map(|(c, _)| c)
        .collect()
}

/// Scan-based reference for [`Sentence::descendants`]: the stack walk over
/// `scan_children`, exactly the pre-CSR implementation.
fn scan_descendants(heads: &[u16], i: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = scan_children(heads, i);
    while let Some(x) = stack.pop() {
        out.push(x);
        stack.extend(scan_children(heads, x));
    }
    out
}

fn sentence_with_heads(heads: Vec<u16>) -> darwin::text::Sentence {
    let n = heads.len();
    darwin::text::Sentence::new(
        0,
        (0..n as u32).map(Sym).collect(),
        vec![PosTag::Noun; n],
        heads,
    )
}

/// Fully arbitrary head arrays: self-loops, multiple roots, even cycles —
/// adjacency is a per-node property, so no shape restriction is needed.
fn arbitrary_heads() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..u16::MAX, 0..24).prop_map(|v| {
        let n = v.len() as u16;
        v.into_iter().map(|r| r % n.max(1)).collect()
    })
}

/// Forest-shaped head arrays (`heads[i] <= i`, roots self-looped): the
/// acyclic family both the old scan walk and the CSR walk terminate on.
fn forest_heads() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..u16::MAX, 0..24).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, r)| (r as usize % (i + 1)) as u16)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// The corpus-resident CSR adjacency must reproduce the head-array
    /// filter scan exactly — same children, same ascending order — on
    /// arbitrary head arrays (empty sentences, forests, self-loops,
    /// cycles), and `root()` must still find the first self-loop.
    #[test]
    fn csr_children_equal_filter_scan(heads in arbitrary_heads()) {
        let s = sentence_with_heads(heads.clone());
        for i in 0..heads.len() {
            prop_assert_eq!(
                s.children(i).collect::<Vec<_>>(),
                scan_children(&heads, i),
                "children of {} under {:?}", i, &heads
            );
        }
        let scan_root = heads.iter().enumerate().find(|(i, &h)| *i == h as usize).map(|(i, _)| i);
        prop_assert_eq!(s.root(), scan_root);
    }

    /// The CSR stack walk behind `descendants` must visit the same nodes in
    /// the same order as the scan-based walk it replaced, on every
    /// forest-shaped head array.
    #[test]
    fn csr_descendants_equal_scan_walk(heads in forest_heads()) {
        let s = sentence_with_heads(heads.clone());
        for i in 0..heads.len() {
            prop_assert_eq!(
                s.descendants(i),
                scan_descendants(&heads, i),
                "descendants of {} under {:?}", i, &heads
            );
        }
    }

    /// The reusable match kernel (`MatchCtx`, memoized over a node×token
    /// arena) must agree with the plain recursive matcher on every
    /// (pattern, sentence, anchor) triple — including cross-sentence pairs
    /// where the pattern does not match.
    #[test]
    fn match_kernel_equals_plain_recursion(texts in corpus_strategy()) {
        let corpus = Corpus::from_texts(texts.iter());
        let mut ctx = darwin::grammar::MatchCtx::new();
        let pats: Vec<TreePattern> = corpus
            .sentences()
            .iter()
            .flat_map(|s| darwin::index::sketch::tree_sketch(s, &Default::default()))
            .take(60)
            .collect();
        for p in &pats {
            for s in corpus.sentences() {
                prop_assert_eq!(
                    ctx.matches(p, s),
                    p.matches(s),
                    "matches: {} on sentence {}", p.display(corpus.vocab()), s.id
                );
                for i in 0..s.len() {
                    prop_assert_eq!(
                        ctx.matches_at(p, s, i),
                        p.matches_at(s, i),
                        "matches_at {}: {} on sentence {}", i, p.display(corpus.vocab()), s.id
                    );
                }
            }
        }
    }

    /// `append_with_threads` interns pre-enumerated per-sentence key lists;
    /// the result must be indistinguishable from the serial per-sentence
    /// append — rule numbering, coverage and hierarchy — for any split.
    #[test]
    fn threaded_append_equals_serial(texts in corpus_strategy()) {
        if texts.len() < 2 {
            return Ok(());
        }
        let split = texts.len() / 2;
        let base = Corpus::from_texts(texts[..split].iter());
        let mut serial = IndexSet::build(&base, &IndexConfig::small());
        let mut threaded = IndexSet::build(&base, &IndexConfig::small());
        let mut corpus = base;
        corpus.append_texts(texts[split..].iter(), 1);
        serial.append(&corpus).unwrap();
        threaded.append_with_threads(&corpus, 4).unwrap();
        let serial_rules: Vec<RuleRef> = serial.all_rules().collect();
        let threaded_rules: Vec<RuleRef> = threaded.all_rules().collect();
        prop_assert_eq!(&serial_rules, &threaded_rules, "rule numbering diverged");
        for &r in &serial_rules {
            prop_assert_eq!(serial.coverage(r), threaded.coverage(r), "coverage of {:?}", r);
            prop_assert_eq!(serial.parents(r), threaded.parents(r), "parents of {:?}", r);
            prop_assert_eq!(serial.children(r), threaded.children(r), "children of {:?}", r);
        }
    }
}

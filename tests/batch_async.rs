//! The async batch layer's defining contracts (`darwin_core::batch`):
//!
//! 1. **Synchronous replay.** With `BatchPolicy::Fixed(1)` and the
//!    `Immediate` adapter, `Darwin::run_async` replays the synchronous
//!    `Darwin::run` trace byte for byte — at every shard count, thread
//!    count and answer-arrival schedule (one question in flight means a
//!    schedule can only delay, never reorder).
//! 2. **Arrival invariance.** For any fixed batch size, the *final* state
//!    (positives, scores, question set, accepted set) is invariant under
//!    the answer-arrival schedule and the S × threads execution matrix:
//!    wave membership is fixed before any of the wave's answers apply,
//!    and everything an answer mutates commutes (`P` union, fixed-point
//!    benefit sums, one retrain per drained wave).
//!
//! `DARWIN_TEST_BATCH` (CI runs 1 and 8) sets the wave size the
//! env-driven check runs with, mirroring `DARWIN_TEST_THREADS`.

use darwin::prelude::*;
use darwin_core::batch::ScriptedArrival;
use darwin_core::AsyncRunResult;
use darwin_testkit::{
    assert_equivalent, assert_same_final, directions_fixture, indexed, test_batch, test_threads,
    transport, NoisyOracle, ScriptedOracle,
};
use proptest::prelude::*;

fn cfg(batch: BatchPolicy, shards: usize, threads: usize) -> DarwinConfig {
    DarwinConfig {
        budget: 15,
        n_candidates: 1200,
        shards,
        threads,
        batch,
        ..DarwinConfig::fast()
    }
}

fn run_sync(n: usize, dseed: u64, shards: usize, threads: usize) -> RunResult {
    let (d, index) = directions_fixture(n, dseed);
    let darwin = Darwin::new(
        &d.corpus,
        &index,
        cfg(BatchPolicy::Fixed(1), shards, threads),
    );
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    darwin.run(seed, &mut oracle)
}

fn run_async(
    n: usize,
    dseed: u64,
    batch: BatchPolicy,
    holds: &[usize],
    shards: usize,
    threads: usize,
) -> AsyncRunResult {
    let (d, index) = directions_fixture(n, dseed);
    let darwin = Darwin::new(&d.corpus, &index, cfg(batch, shards, threads));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = ScriptedArrival::new(GroundTruthOracle::new(&d.labels, 0.8), holds.to_vec());
    darwin.run_async(seed, &mut oracle)
}

/// Contract 1, pinned on the suite fixture: batch 1 + immediate answers =
/// the synchronous loop, byte for byte, across the shard matrix at the
/// env-configured thread count.
#[test]
fn batch1_immediate_replays_synchronous_trace() {
    let threads = test_threads();
    let reference = run_sync(600, 42, 1, threads);
    assert!(reference.questions() > 5, "reference run asked nothing");
    for shards in [1usize, 2, 4] {
        let done = run_async(600, 42, BatchPolicy::Fixed(1), &[], shards, threads);
        assert_equivalent(
            &reference,
            &done.run,
            &format!("batch=1 S={shards} T={threads}"),
        );
        assert_eq!(done.report.peak_in_flight, 1);
        assert_eq!(done.report.submitted, reference.questions());
        assert_eq!(
            done.report.cost.cents,
            reference.questions() * 6,
            "§4.3: 3 members × 2¢ per question"
        );
    }
}

/// Contract 2, adversarial schedule: a wave's first-submitted question is
/// answered last, with the rest arriving staggered — the final state must
/// match the immediate-delivery run of the same batch size exactly.
#[test]
fn adversarial_out_of_order_delivery_matches_immediate() {
    let batch = BatchPolicy::Fixed(4);
    let reference = run_async(600, 42, batch.clone(), &[], 1, 1);
    assert!(
        reference.report.peak_in_flight > 1,
        "fixture must actually pipeline"
    );
    // Submission i held for holds[i % len] polls: within a 4-wave the
    // first submission lands last, the second second-to-last, etc.
    for holds in [vec![3usize, 2, 1, 0], vec![7, 0, 3, 1], vec![1, 5, 0, 2]] {
        let scrambled = run_async(600, 42, batch.clone(), &holds, 1, 1);
        assert_same_final(
            &reference.run,
            &scrambled.run,
            &format!("adversarial schedule {holds:?}"),
        );
        assert_eq!(
            scrambled.report.submitted,
            scrambled.run.questions(),
            "every submitted question answered exactly once"
        );
        assert_eq!(scrambled.report.retrains, reference.report.retrains);
    }
}

/// The env-driven matrix cell (CI: DARWIN_TEST_BATCH ∈ {1, 8} ×
/// DARWIN_TEST_THREADS ∈ {1, 4}): the configured batch size must be
/// schedule-invariant, and at batch 1 equal the synchronous loop.
#[test]
fn env_batch_is_schedule_invariant() {
    let (batch, threads) = (test_batch(), test_threads());
    let policy = BatchPolicy::Fixed(batch);
    let immediate = run_async(600, 42, policy.clone(), &[], 1, threads);
    let scrambled = run_async(600, 42, policy, &[2, 0, 4, 1, 3], 1, threads);
    assert_same_final(
        &immediate.run,
        &scrambled.run,
        &format!("batch={batch} T={threads}"),
    );
    if batch == 1 {
        let sync = run_sync(600, 42, 1, threads);
        assert_equivalent(&sync, &immediate.run, "batch=1 vs synchronous");
    }
}

/// The adaptive policies must complete and actually batch. BenefitDecay is
/// deterministic (no wall-clock input), so it must also be
/// schedule-invariant; LatencyTargeted sizes wave from measurements, so
/// only its outcome sanity is asserted.
#[test]
fn adaptive_policies_drive_the_loop() {
    let decay = BatchPolicy::BenefitDecay {
        max: 8,
        cutoff: 0.5,
    };
    let a = run_async(600, 42, decay.clone(), &[], 1, 1);
    let b = run_async(600, 42, decay, &[1, 3, 0, 2], 1, 1);
    assert_same_final(&a.run, &b.run, "benefit-decay schedule invariance");
    assert!(a.report.peak_in_flight > 1, "decay policy never batched");

    let lat = run_async(600, 42, BatchPolicy::LatencyTargeted { max: 8 }, &[], 1, 1);
    assert!(lat.run.questions() > 5);
    assert!(!lat.run.accepted.is_empty());
    assert!(lat.report.peak_in_flight <= 8);
}

/// Scripted answers are selection-independent, so they hold the question
/// *sequence* fixed across loop flavors: on the transport fixture, a
/// scripted YES/NO interleaving through the async loop at batch 1 must
/// replay the synchronous run byte for byte — including the YES-flood
/// prefix that floods `P` through the out-of-order application path.
#[test]
fn scripted_answers_replay_identically_through_the_async_loop() {
    let (corpus, _labels) = transport();
    let index = indexed(&corpus, 4);
    let script = [true, true, false, true, false, false, true, false];
    let make_cfg = || cfg(BatchPolicy::Fixed(1), 1, 1);
    let seed = || Seed::Rule(Heuristic::phrase(&corpus, "shuttle to the airport").unwrap());

    let sync = {
        let mut oracle = ScriptedOracle::new(script);
        Darwin::new(&corpus, &index, make_cfg()).run(seed(), &mut oracle)
    };
    let done = {
        let mut oracle = Immediate::new(ScriptedOracle::new(script));
        Darwin::new(&corpus, &index, make_cfg()).run_async(seed(), &mut oracle)
    };
    assert!(sync.questions() > 3, "scripted run stalled");
    assert_equivalent(&sync, &done.run, "scripted batch=1 vs synchronous");
}

/// §4.3 accounting against noisy annotators: `run_parallel_costed` prices
/// every asked question at members × 2¢ regardless of answer quality, the
/// question count reconciles with the per-annotator ask counts, and a 10%
/// answer-flip rate doesn't stall discovery.
#[test]
fn noisy_crowd_run_reconciles_with_cost_report() {
    let (d, index) = directions_fixture(600, 42);
    let darwin = Darwin::new(&d.corpus, &index, cfg(BatchPolicy::Fixed(1), 1, 1));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut a = NoisyOracle::new(&d.labels, 0.1, 1);
    let mut b = NoisyOracle::new(&d.labels, 0.1, 2);
    let mut c = NoisyOracle::new(&d.labels, 0.1, 3);
    let (run, cost) = {
        let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b, &mut c];
        darwin.run_parallel_costed(seed, &mut annotators, 5, &CostModel::paper())
    };
    assert!(run.questions() > 3, "noisy crowd run stalled");
    assert_eq!(cost.questions, run.questions());
    assert_eq!(cost.judgments, run.questions() * 3);
    assert_eq!(cost.cents, run.questions() * 6, "3 members × 2¢ a question");
    assert_eq!(
        a.queries() + b.queries() + c.queries(),
        run.questions(),
        "every question went to exactly one annotator"
    );
    assert!(
        run.positives.len() > run.p_size_after(0),
        "10% flips must not stop P from growing"
    );
}

/// The async loop under a noisy oracle: §4.3 pricing rides the report, and
/// determinism holds (same noise seed ⇒ same trace) even with batching.
#[test]
fn noisy_async_run_is_deterministic_and_priced() {
    let (d, index) = directions_fixture(600, 42);
    let run = || {
        let darwin = Darwin::new(&d.corpus, &index, cfg(BatchPolicy::Fixed(4), 1, 1));
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut oracle = darwin_core::Immediate::new(NoisyOracle::new(&d.labels, 0.15, 7));
        darwin.run_async_costed(seed, &mut oracle, &CostModel::single())
    };
    let x = run();
    let y = run();
    assert_equivalent(&x.run, &y.run, "noisy async determinism");
    assert_eq!(x.report.cost.cents, x.run.questions() * 2);
    assert_eq!(x.report.cost.judgments, x.run.questions());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..Default::default() })]

    /// The full (batch, arrival schedule, S, threads) matrix against the
    /// synchronous reference: batch 1 replays it byte for byte; every
    /// batch size is invariant in final state under schedule, shards and
    /// threads.
    #[test]
    fn batch_matrix_against_synchronous_reference(
        n in 220usize..300,
        dseed in 0u64..500,
        batch in prop::sample::select(vec![1usize, 2, 4, 8]),
        holds in prop::collection::vec(0usize..5, 1..8),
        shards in prop::sample::select(vec![1usize, 2, 4]),
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let sync = run_sync(n, dseed, 1, 1);
        let policy = BatchPolicy::Fixed(batch);
        // The cell under test: scripted schedule, sharded, threaded.
        let cell = run_async(n, dseed, policy.clone(), &holds, shards, threads);
        // Its immediate-delivery, unsharded sibling.
        let reference = run_async(n, dseed, policy, &[], 1, 1);

        prop_assert_eq!(
            cell.run.positives.clone(),
            reference.run.positives.clone(),
            "batch={} holds={:?} S={} T={}: final P differs from immediate sibling",
            batch, &holds, shards, threads
        );
        prop_assert_eq!(
            cell.run.scores.clone(),
            reference.run.scores.clone(),
            "batch={} S={} T={}: final scores differ from immediate sibling",
            batch, shards, threads
        );
        prop_assert_eq!(cell.run.questions(), reference.run.questions());
        if batch == 1 {
            // One in flight: the async loop IS the synchronous loop.
            prop_assert_eq!(
                cell.run.positives.clone(), sync.positives.clone(),
                "batch=1 must replay the synchronous positives"
            );
            prop_assert_eq!(cell.run.scores.clone(), sync.scores.clone());
            for (x, y) in cell.run.trace.iter().zip(&sync.trace) {
                prop_assert_eq!(&x.rule, &y.rule, "q{}: rule differs from sync", x.question);
                prop_assert_eq!(x.answer, y.answer);
                prop_assert_eq!(&x.new_positive_ids, &y.new_positive_ids);
            }
        }
    }
}

//! The durable-session contract: **suspend at any wave barrier, resume
//! from bytes alone, and the completed trace is byte-identical to the
//! uninterrupted reference** — across transport {InProc, Proc, Tcp} ×
//! S ∈ {1,2,4} × threads × batch × fanout, *including* resuming under a
//! different deployment than the one that suspended.
//!
//! A snapshot captures exactly the run state a wave barrier cannot
//! re-derive (P, trace, scores, RNG, strategy, frontier memo) and
//! nothing the deployment owns: resume re-attaches workers by replaying
//! `ShardInit`/`Track` through the resuming `Darwin`'s connectors — the
//! same reconnect-and-replay machinery a mid-run worker death exercises,
//! which is why the two compose (`worker_death_after_snapshot_recovers`).
//!
//! Corruption is the other half of durability: `snapshot_mutants` proves
//! every structurally damaged image is rejected with a clean error —
//! decode never panics, never allocates unboundedly — and the proptest
//! suite pins `encode(decode(encode(x))) == encode(x)` for every
//! snapshot constituent, NaN payloads and empty images included.
//!
//! CI matrix: `DARWIN_TEST_CRASH_AT` picks a single kill barrier (unset
//! = every barrier), composed with `DARWIN_TEST_TRANSPORT` /
//! `DARWIN_TEST_THREADS` / `DARWIN_TEST_BATCH` through `TestEnv`.

use darwin::prelude::*;
use darwin_core::snapshot::{config_fingerprint, SessionCounters, Snapshot, SnapshotError};
use darwin_core::{AsyncOracle, SessionOutcome, StrategyState, TraceStep};
use darwin_index::RuleRef;
use darwin_testkit::{
    assert_resumed_equivalent, directions_fixture, shard_connector, snapshot_mutants, CrashPlan,
    Fault, FlakyTransport, TestEnv, TransportKind,
};
use darwin_wire::{Decode, Encode, InProc, Transport, WireError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const N: usize = 500;
const DSEED: u64 = 42;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_darwin-worker"))
}

fn cfg(shards: usize, threads: usize, batch: usize) -> DarwinConfig {
    DarwinConfig {
        budget: 12,
        n_candidates: 1200,
        shards,
        threads,
        batch: BatchPolicy::Fixed(batch),
        ..DarwinConfig::fast()
    }
}

/// The snapshot matrix's standard fixture: a directions corpus, its
/// index, the seed rule, and ground-truth labels.
fn fixture() -> (darwin_datasets::Dataset, IndexSet) {
    directions_fixture(N, DSEED)
}

fn seed_of(d: &darwin_datasets::Dataset) -> Seed {
    Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap())
}

// ---- the crash-recovery invariant ---------------------------------------

/// Kill-at-every-barrier, local S=1: the exhaustive fault injector drives
/// the reference, then for each wave barrier suspends there, drops
/// everything but the bytes, resumes, and requires byte-identical
/// completion (`DARWIN_TEST_CRASH_AT` narrows to one barrier in CI cells).
#[test]
fn crash_at_every_barrier_resumes_byte_identical() {
    let env = TestEnv::from_env();
    let (d, index) = fixture();
    let darwin = Darwin::new(&d.corpus, &index, env.apply(cfg(1, 1, 3)));
    let seed = seed_of(&d);
    let mut make = || {
        Box::new(Immediate::new(GroundTruthOracle::new(&d.labels, 0.8)))
            as Box<dyn AsyncOracle + '_>
    };
    let plan = CrashPlan::exhaustive(&darwin, &darwin, &seed, &mut make, env.crash_at);
    assert!(
        plan.reference_waves >= 3,
        "fixture too small to exercise barriers: {} waves",
        plan.reference_waves
    );
    if env.crash_at.is_none() {
        assert!(plan.barriers >= 2, "only {} barriers killed", plan.barriers);
    }
}

/// Resume under a *different* deployment: suspend on S=2 remote workers
/// with 1 thread, resume on S=4 remote workers with 4 threads and the
/// opposite fan-out. Shards, threads and fanout are perf knobs outside
/// the config fingerprint, so the resumed run must replay the suspended
/// run's future exactly.
#[test]
fn resume_under_different_shards_threads_fanout() {
    let (d, index) = fixture();
    let seed = seed_of(&d);
    let mut make = || {
        Box::new(Immediate::new(GroundTruthOracle::new(&d.labels, 0.8)))
            as Box<dyn AsyncOracle + '_>
    };
    let suspend_on = Darwin::new(
        &d.corpus,
        &index,
        cfg(2, 1, 3).with_fanout(Fanout::Sequential),
    )
    .with_remote_shards(shard_connector(TransportKind::InProc, None));
    let resume_on = Darwin::new(
        &d.corpus,
        &index,
        cfg(4, 4, 3).with_fanout(Fanout::Concurrent),
    )
    .with_remote_shards(shard_connector(TransportKind::InProc, None));
    let plan = CrashPlan::exhaustive(&suspend_on, &resume_on, &seed, &mut make, None);
    assert!(plan.barriers >= 2, "only {} barriers killed", plan.barriers);
}

/// The transport matrix cell: suspend on one transport, resume on
/// another (rotating InProc → Proc → Tcp → InProc), at S ∈ {1,2,4} — a
/// session hops between genuinely different processes and sockets. One
/// barrier per cell keeps the child-process matrix affordable; the
/// exhaustive plan above covers every barrier in-process.
#[test]
fn snapshot_hops_across_transports_and_shard_counts() {
    let (d, index) = fixture();
    let seed = seed_of(&d);
    let reference = {
        let darwin = Darwin::new(&d.corpus, &index, cfg(1, 1, 3));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
        darwin.run_async(seed.clone(), &mut oracle)
    };
    let rotations = [
        (TransportKind::InProc, TransportKind::Proc),
        (TransportKind::Proc, TransportKind::Tcp),
        (TransportKind::Tcp, TransportKind::InProc),
    ];
    for (i, &(from, to)) in rotations.iter().enumerate() {
        let shards = [1usize, 2, 4][i];
        let suspend_on = Darwin::new(&d.corpus, &index, cfg(shards, 1, 3))
            .with_remote_shards(shard_connector(from, Some(worker_exe())));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
        let bytes = match suspend_on.snapshot(seed.clone(), &mut oracle, 2) {
            SessionOutcome::Suspended(snap) => snap.to_bytes(),
            SessionOutcome::Finished(_) => panic!("run finished before barrier 2"),
        };
        drop(suspend_on); // the suspending deployment dies with its workers
        let resume_on = Darwin::new(&d.corpus, &index, cfg(shards, 1, 3))
            .with_remote_shards(shard_connector(to, Some(worker_exe())));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
        let resumed = resume_on
            .resume(&bytes, &mut oracle)
            .unwrap_or_else(|e| panic!("{from:?}→{to:?} S={shards}: {e}"));
        assert!(
            resumed.run.wire_error.is_none(),
            "{:?}",
            resumed.run.wire_error
        );
        assert_resumed_equivalent(&reference, &resumed, &format!("{from:?}→{to:?} S={shards}"));
    }
}

/// A run can hop barrier by barrier: suspend at wave 1, resume-and-
/// suspend again at wave 3, resume to completion — three processes'
/// worth of lifetime, one byte-identical trace.
#[test]
fn chained_suspends_compose() {
    let (d, index) = fixture();
    let seed = seed_of(&d);
    let darwin = Darwin::new(&d.corpus, &index, cfg(1, 1, 3));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let reference = darwin.run_async(seed.clone(), &mut oracle);

    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let first = match darwin.snapshot(seed, &mut oracle, 1) {
        SessionOutcome::Suspended(snap) => snap.to_bytes(),
        SessionOutcome::Finished(_) => panic!("finished before barrier 1"),
    };
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let second = match darwin
        .resume_suspendable(&first, &mut oracle, Some(3))
        .unwrap()
    {
        SessionOutcome::Suspended(snap) => {
            assert_eq!(snap.counters.waves, 3, "cumulative wave count");
            snap.to_bytes()
        }
        SessionOutcome::Finished(_) => panic!("finished before barrier 3"),
    };
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let done = darwin.resume(&second, &mut oracle).unwrap();
    assert_resumed_equivalent(&reference, &done, "two-hop chain");
}

// ---- composition with worker death --------------------------------------

/// Satellite of the reconnect-and-replay machinery: the deployment that
/// *resumes* has a shard worker that keeps dying (but is restartable) —
/// the snapshot re-attach and the mid-run re-dials stack, and the
/// recovered trace is still bit-identical to the never-interrupted,
/// never-flaky reference.
#[test]
fn worker_death_after_snapshot_recovers() {
    let (d, index) = fixture();
    let seed = seed_of(&d);
    let reference = {
        let darwin = Darwin::new(&d.corpus, &index, cfg(1, 1, 3));
        let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
        darwin.run_async(seed.clone(), &mut oracle)
    };
    let suspend_on = Darwin::new(&d.corpus, &index, cfg(2, 1, 3))
        .with_remote_shards(shard_connector(TransportKind::InProc, None));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let bytes = match suspend_on.snapshot(seed, &mut oracle, 1) {
        SessionOutcome::Suspended(snap) => snap.to_bytes(),
        SessionOutcome::Finished(_) => panic!("finished before barrier 1"),
    };
    drop(suspend_on);
    // Every incarnation of shard 0's worker in the *resuming* deployment
    // survives its re-init (hello, init, retain, track — 4 sends) plus
    // exactly one request, then its transport drops everything: the
    // worker dies over and over, each death one request further in, and
    // is re-dialed and replayed into every time.
    let dials = Arc::new(AtomicUsize::new(0));
    let dials_in = dials.clone();
    let connect: Box<darwin_core::ShardConnector> = Box::new(move |s, _range| {
        let (client, mut server) = InProc::pair();
        std::thread::spawn(move || {
            let _ = darwin_core::serve_shard(&mut server);
        });
        let t: Box<dyn Transport> = if s == 0 {
            dials_in.fetch_add(1, Ordering::SeqCst);
            Box::new(FlakyTransport::after(Box::new(client), Fault::Drop, 5))
        } else {
            Box::new(client)
        };
        Ok(t)
    });
    let resume_on = Darwin::new(&d.corpus, &index, cfg(2, 1, 3)).with_remote_shards(connect);
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let resumed = resume_on.resume(&bytes, &mut oracle).unwrap();
    assert!(
        resumed.run.wire_error.is_none(),
        "reconnect-and-replay must absorb the deaths: {:?}",
        resumed.run.wire_error
    );
    assert!(
        dials.load(Ordering::SeqCst) > 1,
        "shard 0 must actually have died and been re-dialed"
    );
    assert_resumed_equivalent(&reference, &resumed, "flaky resume deployment");
}

// ---- rejection: corruption, mismatch, versioning ------------------------

/// A real snapshot survives the frame, and every structurally damaged
/// mutant of it is refused with a clean error — never a panic. Mutants
/// behind a recomputed checksum (pure codec trial) must also never panic.
#[test]
fn corrupted_snapshots_are_rejected_cleanly() {
    let (d, index) = fixture();
    let darwin = Darwin::new(&d.corpus, &index, cfg(1, 1, 3));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let bytes = match darwin.snapshot(seed_of(&d), &mut oracle, 2) {
        SessionOutcome::Suspended(snap) => snap.to_bytes(),
        SessionOutcome::Finished(_) => panic!("finished before barrier 2"),
    };
    assert!(Snapshot::from_bytes(&bytes).is_ok(), "the original decodes");
    let mut rejected = 0usize;
    for mutant in snapshot_mutants(&bytes, 7) {
        match Snapshot::from_bytes(&mutant.bytes) {
            Err(_) => rejected += 1,
            Ok(_) => assert!(
                !mutant.must_reject,
                "structural damage decoded successfully: {}",
                mutant.what
            ),
        }
    }
    assert!(rejected > 150, "only {rejected} mutants rejected");
}

/// Resuming against the wrong deployment is a clean mismatch: a
/// different semantic config (seed) and a different corpus are both
/// refused by fingerprint before any state is rebuilt.
#[test]
fn mismatched_deployment_is_refused() {
    let (d, index) = fixture();
    let darwin = Darwin::new(&d.corpus, &index, cfg(1, 1, 3));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    let bytes = match darwin.snapshot(seed_of(&d), &mut oracle, 1) {
        SessionOutcome::Suspended(snap) => snap.to_bytes(),
        SessionOutcome::Finished(_) => panic!("finished before barrier 1"),
    };

    let other_cfg = Darwin::new(&d.corpus, &index, cfg(1, 1, 3).with_seed(DSEED + 1));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    match other_cfg.resume(&bytes, &mut oracle) {
        Err(SnapshotError::Mismatch(m)) => assert!(m.contains("config"), "{m}"),
        Err(e) => panic!("config drift must be a Mismatch, got {e:?}"),
        Ok(_) => panic!("config drift must be refused"),
    }

    let (d2, index2) = directions_fixture(N + 50, DSEED);
    let other_corpus = Darwin::new(&d2.corpus, &index2, cfg(1, 1, 3));
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d2.labels, 0.8));
    assert!(
        matches!(
            other_corpus.resume(&bytes, &mut oracle),
            Err(SnapshotError::Mismatch(_))
        ),
        "corpus drift must be a Mismatch"
    );
}

/// The snapshot version window: a frame stamped with a future version is
/// refused as `BadVersion`, not misdecoded.
#[test]
fn future_snapshot_version_is_refused() {
    let frame = darwin_wire::snapshot_frame(&[0u8; 16]);
    let mut future = frame.clone();
    future[2] = darwin_wire::SNAPSHOT_VERSION + 1;
    match Snapshot::from_bytes(&future) {
        Err(SnapshotError::Wire(WireError::BadVersion { got, .. })) => {
            assert_eq!(got, darwin_wire::SNAPSHOT_VERSION + 1)
        }
        other => panic!("future version must be BadVersion, got {other:?}"),
    }
}

/// Perf knobs are outside the config fingerprint; semantic knobs are in.
#[test]
fn fingerprint_partitions_the_config() {
    let base = cfg(2, 1, 3);
    let fp = config_fingerprint(&base);
    assert_eq!(fp, config_fingerprint(&base.clone().with_shards(4)));
    assert_eq!(fp, config_fingerprint(&base.clone().with_threads(8)));
    assert_eq!(
        fp,
        config_fingerprint(&base.clone().with_fanout(Fanout::Sequential))
    );
    assert_ne!(
        fp,
        config_fingerprint(&base.clone().with_batch(BatchPolicy::Fixed(4)))
    );
    assert_ne!(fp, config_fingerprint(&base.with_seed(DSEED + 1)));
}

// ---- proptest: canonical round-trips for every constituent --------------

fn arb_ruleref() -> impl Strategy<Value = RuleRef> {
    prop_oneof![
        Just(RuleRef::Root),
        (0u32..50_000).prop_map(RuleRef::Phrase),
        (0u32..50_000).prop_map(RuleRef::Tree),
    ]
}

fn arb_heuristic() -> impl Strategy<Value = Heuristic> {
    prop::collection::vec(0u32..10_000, 1..5).prop_map(|syms| {
        Heuristic::Phrase(darwin_grammar::PhrasePattern::from_tokens(
            syms.into_iter().map(darwin_text::Sym),
        ))
    })
}

fn arb_trace_step() -> impl Strategy<Value = TraceStep> {
    (
        0usize..10_000,
        arb_heuristic(),
        any::<bool>(),
        prop::collection::vec(any::<u32>(), 0..8),
        0usize..100_000,
    )
        .prop_map(
            |(question, rule, answer, new_positive_ids, p_size)| TraceStep {
                question,
                rule,
                answer,
                new_positive_ids,
                p_size,
            },
        )
}

/// `f32` bit patterns including NaN payloads, infinities and zeros.
fn arb_bits_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn roundtrip_canonical<T: Encode + Decode>(x: &T) {
    let bytes = x.to_bytes();
    let back = T::from_bytes(&bytes).expect("own encoding must decode");
    assert_eq!(back.to_bytes(), bytes, "re-encoding must be canonical");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..Default::default() })]

    #[test]
    fn trace_steps_roundtrip(step in arb_trace_step()) {
        roundtrip_canonical(&step);
    }

    #[test]
    fn strategy_state_roundtrips(
        local in prop::collection::vec(arb_ruleref(), 0..16),
        universal_mode in any::<bool>(),
        attempts in any::<u64>(),
    ) {
        roundtrip_canonical(&StrategyState { local, universal_mode, attempts });
    }

    #[test]
    fn session_counters_roundtrip(
        submitted in any::<u64>(), waves in any::<u64>(),
        retrains in any::<u64>(), peak in any::<u64>(),
    ) {
        roundtrip_canonical(&SessionCounters { submitted, waves, retrains, peak });
    }

    #[test]
    fn frontier_images_roundtrip(
        nodes in prop::collection::vec(any::<(u32, u32, u32)>(), 0..32),
        kids in prop::collection::vec(any::<u32>(), 0..64),
        pending in prop::collection::vec(any::<u32>(), 0..16),
        synced_p in any::<u64>(),
        reflected in prop::collection::vec(any::<u32>(), 0..16),
        universe in any::<u32>(),
        generations in any::<u64>(),
    ) {
        let img = darwin_core::FrontierImage {
            nodes, kids, pending, synced_p, reflected, universe,
            stats: darwin_core::FrontierStats { generations, ..Default::default() },
        };
        roundtrip_canonical(&img);
    }

    /// Whole snapshots — NaN-payload scores, arbitrary pending sets and
    /// optional frontiers included — survive the full frame round trip
    /// canonically.
    #[test]
    fn snapshots_roundtrip_with_nan_scores(
        n in 0u32..64,
        scores in prop::collection::vec(arb_bits_f32(), 0..64),
        p in prop::collection::vec(any::<u32>(), 0..16),
        queried in prop::collection::vec(arb_ruleref(), 0..16),
        trace in prop::collection::vec(arb_trace_step(), 0..6),
        pending in prop::collection::vec((any::<u64>(), arb_ruleref()), 0..8),
        rng in any::<[u64; 4]>(),
        with_frontier in any::<bool>(),
        waves in any::<u64>(),
    ) {
        let snap = Snapshot {
            config_fp: 1,
            corpus_fp: 2,
            n,
            p,
            queried,
            accepted: Vec::new(),
            rejected: Vec::new(),
            trace,
            asked: Vec::new(),
            asked_coverages: vec![3, 5],
            seed_refs: vec![RuleRef::Root],
            pending,
            rng,
            cache: darwin_classifier::ScoreImage {
                scores,
                round: 2,
                threshold: 0.3,
                full_every: 3,
                incremental: true,
                refreshed_last_round: 1,
                epoch: 4,
                last_was_full: false,
                changes: vec![(0, 0.5, f32::NAN)],
            },
            frontier: with_frontier.then(darwin_core::FrontierImage::default),
            strategy: StrategyState::default(),
            counters: SessionCounters { submitted: 0, waves, retrains: 0, peak: 0 },
        };
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}

/// The empty-everything edge: a snapshot of a run over an empty corpus
/// with an empty pool round-trips and validates its own shape.
#[test]
fn empty_corpus_empty_pool_snapshot_roundtrips() {
    let snap = Snapshot {
        config_fp: 0,
        corpus_fp: 0,
        n: 0,
        p: Vec::new(),
        queried: Vec::new(),
        accepted: Vec::new(),
        rejected: Vec::new(),
        trace: Vec::new(),
        asked: Vec::new(),
        asked_coverages: Vec::new(),
        seed_refs: Vec::new(),
        pending: Vec::new(),
        rng: [0; 4],
        cache: darwin_classifier::ScoreImage::default(),
        frontier: Some(darwin_core::FrontierImage::default()),
        strategy: StrategyState::default(),
        counters: SessionCounters::default(),
    };
    let bytes = snap.to_bytes();
    let back = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.to_bytes(), bytes);
}

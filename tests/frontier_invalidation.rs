//! Edge cases of incremental-frontier invalidation: the pool's contract is
//! "byte-for-byte the from-scratch walk, whatever happens to `P`" — these
//! tests drive the paths where that is easiest to get wrong: a
//! regeneration with *no* dirty ids (must not re-score anything), a YES
//! that exhausts/empties the expansion heap and the candidate pool, and an
//! epoch-stale pool (positives grown behind its back) that must be
//! rejected, not patched.

use darwin::core::candidates::generate_hierarchy_pooled;
use darwin::core::{Darwin, DarwinConfig, FrontierPool, GroundTruthOracle, Seed, TraversalKind};
use darwin::grammar::Heuristic;
use darwin::index::IdSet;
use darwin_testkit::{assert_same_pool, tiny_transport as setup};

/// A regeneration with an empty dirty set (e.g. the loop regenerates after
/// a NO, or twice in a row) must apply no deltas and re-score nothing —
/// and still reproduce the from-scratch output.
#[test]
fn empty_dirty_set_rescores_nothing() {
    let (c, idx) = setup();
    let p = IdSet::from_ids(&[0, 1], c.len());
    let mut pool = FrontierPool::new();
    assert_same_pool(&idx, &p, 500, &mut pool, "first generation");
    let after_first = pool.stats();
    assert_same_pool(&idx, &p, 500, &mut pool, "regeneration, nothing dirty");
    let after_second = pool.stats();
    assert_eq!(after_second.delta_batches, after_first.delta_batches);
    assert_eq!(after_second.rules_rescored, after_first.rules_rescored);
    assert_eq!(after_second.full_rebuilds, 0, "nothing warranted a rebuild");
    assert_eq!(
        after_second.fresh_nodes, after_first.fresh_nodes,
        "every statistic must be a memo hit the second time"
    );
    assert_eq!(after_second.generations, 2);
}

/// A YES can exhaust the walk: once `P` touches every sentence, every rule
/// is fully covered (`count == overlap`), the §3.2.1 cleanup drops the
/// entire pool and the open heap runs dry. The pooled path must land in
/// the same empty hierarchy — and recover if regeneration keeps being
/// asked for.
#[test]
fn pool_emptying_yes_matches_full_regeneration() {
    let (c, idx) = setup();
    let n = c.len();
    let mut pool = FrontierPool::new();
    let mut p = IdSet::from_ids(&[0, 1], n);
    assert_same_pool(&idx, &p, 10_000, &mut pool, "before the flood");

    // The flood: every remaining sentence turns positive at once.
    let rest: Vec<u32> = (0..n as u32).filter(|&id| !p.contains(id)).collect();
    pool.note_positives(&rest);
    p.extend_from_slice(&rest);
    assert_same_pool(&idx, &p, 10_000, &mut pool, "after the flood");
    let (h, _) = generate_hierarchy_pooled(&idx, &p, 10_000, usize::MAX, &mut pool);
    assert!(
        h.is_empty(),
        "P covers the corpus: every candidate is fully covered and cleaned away"
    );
    // Asking again (empty pool, empty dirty set) stays correct and cheap.
    assert_same_pool(&idx, &p, 10_000, &mut pool, "regeneration after the flood");
    assert_eq!(pool.stats().full_rebuilds, 0, "deltas covered everything");
}

/// Reusing a pool whose epoch stamp no longer matches `|P|` — positives
/// grew without `note_positives`, or were reported incompletely — must be
/// rejected: the cached statistics are dropped and the walk rebuilds from
/// scratch rather than serving stale overlaps.
#[test]
fn epoch_stale_pool_reuse_is_rejected() {
    let (c, idx) = setup();
    let n = c.len();
    let mut pool = FrontierPool::new();
    let mut p = IdSet::from_ids(&[0], n);
    assert_same_pool(&idx, &p, 500, &mut pool, "initial");
    assert_eq!(pool.epoch(), 1);

    // P grows behind the pool's back.
    p.extend_from_slice(&[1, 2]);
    assert_ne!(pool.epoch(), p.len(), "the pool is now provably stale");
    assert_same_pool(&idx, &p, 500, &mut pool, "after unreported growth");
    assert_eq!(pool.stats().full_rebuilds, 1, "stale reuse must rebuild");
    assert_eq!(pool.epoch(), p.len(), "rebuild re-stamps the epoch");

    // Incomplete reporting (one of two new ids) is just as stale.
    pool.note_positives(&[3]);
    p.extend_from_slice(&[3, 4]);
    assert_same_pool(&idx, &p, 500, &mut pool, "after partial report");
    assert_eq!(pool.stats().full_rebuilds, 2);

    // Back under contract: correctly reported growth patches by delta.
    pool.note_positives(&[5]);
    p.insert(5);
    assert_same_pool(&idx, &p, 500, &mut pool, "back under contract");
    assert_eq!(
        pool.stats().full_rebuilds,
        2,
        "no rebuild once honest again"
    );
}

/// A compensating contract violation — a double-reported id masking a
/// missed one, or an already-positive id reported as new — keeps `|P|`
/// and the journal length in agreement, so the epoch stamp alone cannot
/// tell; the reflected-id check must reject it anyway.
#[test]
fn compensating_journal_violations_are_rejected() {
    let (c, idx) = setup();
    let n = c.len();
    let mut pool = FrontierPool::new();
    let mut p = IdSet::from_ids(&[0], n);
    assert_same_pool(&idx, &p, 500, &mut pool, "initial");

    // P gains {1, 2}, but the caller reports [1, 1].
    pool.note_positives(&[1, 1]);
    p.extend_from_slice(&[1, 2]);
    assert_eq!(pool.epoch(), p.len(), "the |P| stamp alone cannot tell");
    assert_same_pool(&idx, &p, 500, &mut pool, "after double-report");
    assert_eq!(pool.stats().full_rebuilds, 1, "must reject, not patch");

    // P gains {3}, but the caller reports the long-positive id 0.
    pool.note_positives(&[0]);
    p.insert(3);
    assert_eq!(pool.epoch(), p.len());
    assert_same_pool(&idx, &p, 500, &mut pool, "after stale-id report");
    assert_eq!(pool.stats().full_rebuilds, 2);
}

/// Engine-level smoke over the same edges: a run whose oracle accepts
/// everything floods `P` until the hierarchy empties — the frontier and
/// full-regeneration engines must replay identical traces through it.
#[test]
fn engine_traces_identical_through_pool_exhaustion() {
    let run = |frontier: bool| {
        let (c, idx) = setup();
        let labels = vec![true; c.len()];
        let cfg = DarwinConfig {
            incremental_frontier: frontier,
            budget: 12,
            n_candidates: 400,
            max_coverage_frac: 1.0,
            ..DarwinConfig::fast().with_traversal(TraversalKind::Universal)
        };
        let darwin = Darwin::new(&c, &idx, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&c, "shuttle").unwrap());
        let mut oracle = GroundTruthOracle::new(&labels, 0.0);
        darwin.run(seed, &mut oracle)
    };
    let full = run(false);
    let pooled = run(true);
    assert_eq!(full.trace.len(), pooled.trace.len());
    for (a, b) in full.trace.iter().zip(&pooled.trace) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.new_positive_ids, b.new_positive_ids);
    }
    assert_eq!(full.positives, pooled.positives);
}

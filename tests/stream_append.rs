//! Property tests for the append-equivalence contract (ISSUE 9): a
//! [`StreamSession`] that appends at arbitrary wave barriers under an
//! arbitrary deployment (shards × threads × transport × fanout) is
//! bit-identical — trace, positives, accepted/rejected, scores — to the
//! from-scratch [`AppendMode::Rebuild`] reference at S=1, t=1, local,
//! driven through the *same* schedule. Edge schedules (empty appends,
//! append before the first wave, appends after completion) fall out of
//! the generator rather than being pinned one by one.

use darwin::core::{
    AppendMode, BatchPolicy, DarwinConfig, Fanout, GroundTruthOracle, Immediate, RunResult, Seed,
    StreamSession,
};
use darwin::index::{IndexConfig, IndexSet};
use darwin::text::Corpus;
use darwin_testkit::{shard_connector, TransportKind};
use proptest::prelude::*;
use std::path::PathBuf;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_darwin-worker"))
}

/// The base corpus every schedule starts from (transport-intent fixture:
/// shuttle questions positive, pizza/pool noise negative).
fn base_texts() -> (Vec<String>, Vec<bool>) {
    let mut texts = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        texts.push(format!("is there a shuttle to the airport at {i}"));
        labels.push(true);
        texts.push(format!("order a pizza with {i} toppings to the room"));
        labels.push(false);
        texts.push(format!("the pool opens at {i} for guests"));
        labels.push(false);
    }
    (texts, labels)
}

/// Deterministic append batch for round `round`: alternating new positives
/// (a family the base corpus only hints at) and new negatives, both with
/// fresh vocabulary so the embedding zero-pad path is always exercised.
/// `size` 0 is a legal, deliberately generated empty append.
fn batch_texts(round: usize, size: usize, labels: &mut Vec<bool>) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..size {
        if i % 2 == 0 {
            out.push(format!("is there a bus to the airport at {round}x{i}"));
            labels.push(true);
        } else {
            out.push(format!("the gym closes at {round}x{i} tonight"));
            labels.push(false);
        }
    }
    out
}

/// One sampled deployment: shard count, thread count, transport (`None` =
/// in-process sharded store) and fanout.
#[derive(Clone, Debug)]
struct Deployment {
    shards: usize,
    threads: usize,
    transport: Option<TransportKind>,
    fanout: Fanout,
}

/// One sampled append schedule: a batch appended before the first wave
/// (possibly empty), then (barrier gap, batch size) steps.
#[derive(Clone, Debug)]
struct Schedule {
    pre: usize,
    steps: Vec<(u64, usize)>,
}

fn deployment() -> impl Strategy<Value = Deployment> {
    (
        1usize..4,
        1usize..3,
        prop::sample::select(vec![
            None,
            Some(TransportKind::InProc),
            Some(TransportKind::Proc),
            Some(TransportKind::Tcp),
        ]),
        prop::bool::ANY,
    )
        .prop_map(|(shards, threads, transport, concurrent)| Deployment {
            shards,
            threads,
            transport,
            fanout: if concurrent {
                Fanout::Concurrent
            } else {
                Fanout::Sequential
            },
        })
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (0usize..4, prop::collection::vec((1u64..4, 0usize..6), 0..3))
        .prop_map(|(pre, steps)| Schedule { pre, steps })
}

fn cfg(d: &Deployment) -> DarwinConfig {
    DarwinConfig {
        budget: 6,
        n_candidates: 400,
        shards: d.shards,
        threads: d.threads,
        batch: BatchPolicy::Fixed(3),
        fanout: d.fanout,
        ..DarwinConfig::fast()
    }
}

/// Drive `sched` under `d`/`mode` and return the finished run. Labels are
/// a pure function of the schedule, so the reference and the candidate
/// see the same oracle.
fn run_schedule(sched: &Schedule, d: &Deployment, mode: AppendMode) -> RunResult {
    let (base, mut labels) = base_texts();
    let pre_batch = batch_texts(0, sched.pre, &mut labels);
    let step_batches: Vec<Vec<String>> = sched
        .steps
        .iter()
        .enumerate()
        .map(|(i, &(_, size))| batch_texts(i + 1, size, &mut labels))
        .collect();

    let corpus = Corpus::from_texts(base.iter());
    let index = IndexSet::build(
        &corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 1,
            ..Default::default()
        },
    );
    let mut session = StreamSession::new(corpus, index, cfg(d), Seed::Positives(vec![0, 3]))
        .with_append_mode(mode);
    if let Some(kind) = d.transport {
        session = session.with_remote_shards(shard_connector(kind, Some(worker_exe())));
    }
    let mut oracle = Immediate::new(GroundTruthOracle::new(&labels, 0.8));
    session.append(pre_batch.iter()).unwrap();
    let mut barrier = 0u64;
    for (&(gap, _), batch) in sched.steps.iter().zip(&step_batches) {
        barrier += gap;
        // Appending after completion is legal (it grows the corpus for a
        // later session); the equivalence of the *finished* run is what
        // the contract pins, so keep applying the schedule either way.
        session.drive(&mut oracle, Some(barrier));
        session.append(batch.iter()).unwrap();
    }
    session.drive(&mut oracle, None);
    session.into_result().expect("run completes").run
}

fn assert_same_run(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.trace, b.trace, "{label}: trace");
    assert_eq!(a.positives, b.positives, "{label}: positives");
    assert_eq!(a.accepted, b.accepted, "{label}: accepted");
    assert_eq!(a.rejected, b.rejected, "{label}: rejected");
    assert_eq!(a.scores, b.scores, "{label}: scores");
    assert_eq!(a.wire_error, b.wire_error, "{label}: wire error");
}

proptest! {
    // Each case is two full interactive sessions (one possibly over
    // process/TCP workers), so the case count is deliberately small —
    // the pinned matrix in `darwin_core::stream` covers the named
    // corners every time.
    #![proptest_config(ProptestConfig { cases: 6, ..Default::default() })]

    /// Delta-append under any sampled deployment replays the local
    /// single-shard rebuild reference bit for bit, for any sampled
    /// append schedule.
    #[test]
    fn append_schedule_equivalence(sched in schedule(), d in deployment()) {
        let reference = run_schedule(
            &sched,
            &Deployment { shards: 1, threads: 1, transport: None, fanout: Fanout::Sequential },
            AppendMode::Rebuild,
        );
        let got = run_schedule(&sched, &d, AppendMode::Delta);
        let label = format!("schedule {sched:?} under {d:?}");
        assert_same_run(&got, &reference, &label);
    }

    /// Rebuild mode itself is deployment-invariant: the reference path
    /// the contract leans on is not a single-configuration artifact.
    #[test]
    fn rebuild_reference_is_deployment_invariant(sched in schedule(), d in deployment()) {
        // Remote workers always grow by delta (`CorpusAppend`); rebuild
        // mode on a remote deployment rebuilds coordinator structures and
        // re-syncs the workers, which must land in the same place.
        let reference = run_schedule(
            &sched,
            &Deployment { shards: 1, threads: 1, transport: None, fanout: Fanout::Sequential },
            AppendMode::Rebuild,
        );
        let got = run_schedule(&sched, &d, AppendMode::Rebuild);
        let label = format!("rebuild, schedule {sched:?} under {d:?}");
        assert_same_run(&got, &reference, &label);
    }
}

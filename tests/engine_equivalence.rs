//! The incremental engine's defining guarantee: delta-maintained benefit
//! aggregates select the *exact same rule sequence* as the pre-refactor
//! full-rescan path, on every traversal strategy and on the baseline
//! selectors. `DarwinConfig { incremental_benefit: false, .. }` keeps the
//! rescan path alive as the reference; the engine's fixed-point sums make
//! the two bit-comparable (see `darwin_core::benefit`).

use darwin::baselines::{HighC, HighP};
use darwin::prelude::*;
use darwin_core::{DarwinConfig, Oracle, RunResult};
use darwin_datasets::directions;

fn run_mode(incremental: bool, kind: TraversalKind, make: Option<MakeStrategy>) -> RunResult {
    let d = directions::generate(800, 42);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: 20,
        n_candidates: 1500,
        incremental_benefit: incremental,
        ..DarwinConfig::fast().with_traversal(kind)
    };
    let darwin = Darwin::new(&d.corpus, &index, cfg);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    match make {
        None => darwin.run(seed, &mut oracle),
        Some(f) => darwin.run_with(seed, &mut oracle, |_| f()),
    }
}

fn assert_equivalent(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{label}: question counts differ"
    );
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(
            x.rule, y.rule,
            "{label}: question {} asked a different rule",
            x.question
        );
        assert_eq!(
            x.answer, y.answer,
            "{label}: question {} got a different answer",
            x.question
        );
        assert_eq!(
            x.new_positive_ids, y.new_positive_ids,
            "{label}: question {} grew P differently",
            x.question
        );
    }
    assert_eq!(
        a.positives, b.positives,
        "{label}: final positive sets differ"
    );
    assert_eq!(a.scores, b.scores, "{label}: final scores differ");
}

#[test]
fn traversals_select_identical_sequences() {
    for kind in [
        TraversalKind::Local,
        TraversalKind::Universal,
        TraversalKind::Hybrid,
    ] {
        let rescan = run_mode(false, kind, None);
        let incremental = run_mode(true, kind, None);
        assert!(
            rescan.questions() > 0,
            "{kind:?}: reference run asked nothing"
        );
        assert_equivalent(&rescan, &incremental, &format!("{kind:?}"));
    }
}

type MakeStrategy = fn() -> Box<dyn darwin_core::Strategy>;

#[test]
fn baseline_selectors_select_identical_sequences() {
    let cases: [(&str, MakeStrategy); 2] =
        [("HighP", || Box::new(HighP)), ("HighC", || Box::new(HighC))];
    for (label, make) in cases {
        let rescan = run_mode(false, TraversalKind::Hybrid, Some(make));
        let incremental = run_mode(true, TraversalKind::Hybrid, Some(make));
        assert_equivalent(&rescan, &incremental, label);
    }
}

#[test]
fn parallel_rounds_select_identical_sequences() {
    let run = |incremental: bool| {
        let d = directions::generate(600, 7);
        let index = IndexSet::build(
            &d.corpus,
            &IndexConfig {
                max_phrase_len: 4,
                min_count: 2,
                ..Default::default()
            },
        );
        let cfg = DarwinConfig {
            budget: 20,
            n_candidates: 1200,
            incremental_benefit: incremental,
            ..DarwinConfig::fast()
        };
        let darwin = Darwin::new(&d.corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut a = GroundTruthOracle::new(&d.labels, 0.8);
        let mut b = GroundTruthOracle::new(&d.labels, 0.8);
        let mut c = GroundTruthOracle::new(&d.labels, 0.8);
        let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b, &mut c];
        darwin.run_parallel(seed, &mut annotators, 4)
    };
    let rescan = run(false);
    let incremental = run(true);
    assert_equivalent(&rescan, &incremental, "parallel");
}

/// Drive the engine step by step and verify the delta-maintained aggregates
/// never drift from a from-scratch recomputation mid-run.
#[test]
fn aggregates_stay_consistent_through_a_run() {
    let d = directions::generate(500, 11);
    let index = IndexSet::build(
        &d.corpus,
        &IndexConfig {
            max_phrase_len: 4,
            min_count: 2,
            ..Default::default()
        },
    );
    let cfg = DarwinConfig {
        budget: 15,
        n_candidates: 1000,
        ..DarwinConfig::fast()
    };
    let darwin = Darwin::new(&d.corpus, &index, cfg);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    let mut engine = darwin.engine(seed);
    let mut strategy = darwin_core::traversal::HybridSearch::new(engine.seed_refs().to_vec(), 5);
    assert!(
        engine.store_is_consistent(),
        "inconsistent before the first question"
    );
    for _ in 0..15 {
        if !engine.step(&mut strategy, &mut oracle) {
            break;
        }
        assert!(
            engine.store_is_consistent(),
            "aggregates drifted after question {}",
            engine.questions()
        );
    }
    assert!(engine.questions() > 3, "run ended suspiciously early");
}

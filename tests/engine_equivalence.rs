//! The incremental engine's defining guarantee: delta-maintained benefit
//! aggregates select the *exact same rule sequence* as the pre-refactor
//! full-rescan path, on every traversal strategy and on the baseline
//! selectors — and, since the execution layer went sharded, for *every
//! shard count*: per-shard fragments merged in the fixed-point domain are
//! bit-identical to the single-store sums, so `DarwinConfig::shards` can
//! never change a trace. `DarwinConfig { incremental_benefit: false, .. }`
//! keeps the rescan path alive as the reference; the engine's fixed-point
//! sums make the paths bit-comparable (see `darwin_core::benefit`).
//!
//! `DARWIN_TEST_THREADS` (CI runs 1 and 4) sets the worker-thread count
//! every run in this suite uses — determinism across thread counts is part
//! of the contract under test.

use darwin::baselines::{HighC, HighP};
use darwin::classifier::{LogReg, LogRegConfig, ScoreCache};
use darwin::prelude::*;
use darwin::text::embed::EmbedConfig;
use darwin_core::{DarwinConfig, Oracle, RunResult};
use darwin_testkit::strategies::corpus_texts as corpus_strategy;
use darwin_testkit::{assert_equivalent, directions_fixture, test_threads};
use proptest::prelude::*;

fn run_mode(incremental: bool, kind: TraversalKind, make: Option<MakeStrategy>) -> RunResult {
    run_sharded(incremental, kind, make, 1)
}

fn run_sharded(
    incremental: bool,
    kind: TraversalKind,
    make: Option<MakeStrategy>,
    shards: usize,
) -> RunResult {
    run_cfg(incremental, true, kind, make, shards, test_threads())
}

fn run_cfg(
    incremental: bool,
    frontier: bool,
    kind: TraversalKind,
    make: Option<MakeStrategy>,
    shards: usize,
    threads: usize,
) -> RunResult {
    let (d, index) = directions_fixture(800, 42);
    let cfg = DarwinConfig {
        budget: 20,
        n_candidates: 1500,
        incremental_benefit: incremental,
        incremental_frontier: frontier,
        shards,
        threads,
        ..DarwinConfig::fast().with_traversal(kind)
    };
    let darwin = Darwin::new(&d.corpus, &index, cfg);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    match make {
        None => darwin.run(seed, &mut oracle),
        Some(f) => darwin.run_with(seed, &mut oracle, |_| f()),
    }
}

#[test]
fn traversals_select_identical_sequences() {
    for kind in [
        TraversalKind::Local,
        TraversalKind::Universal,
        TraversalKind::Hybrid,
    ] {
        let rescan = run_mode(false, kind, None);
        let incremental = run_mode(true, kind, None);
        assert!(
            rescan.questions() > 0,
            "{kind:?}: reference run asked nothing"
        );
        assert_equivalent(&rescan, &incremental, &format!("{kind:?}"));
    }
}

/// Sharding is an execution detail: on every traversal strategy, S ∈
/// {2, 4, 7} shards must replay the single-shard trace byte for byte (and
/// the single-shard incremental trace already equals the rescan reference,
/// by the test above).
#[test]
fn shard_counts_select_identical_sequences() {
    for kind in [
        TraversalKind::Local,
        TraversalKind::Universal,
        TraversalKind::Hybrid,
    ] {
        let reference = run_sharded(true, kind, None, 1);
        assert!(
            reference.questions() > 0,
            "{kind:?}: reference run asked nothing"
        );
        for shards in [2usize, 4, 7] {
            let sharded = run_sharded(true, kind, None, shards);
            assert_equivalent(&reference, &sharded, &format!("{kind:?} S={shards}"));
        }
    }
}

/// The incremental candidate frontier is a regeneration detail: replaying
/// the best-first walk from the pool's memoized statistics must produce the
/// exact trace of the from-scratch walk, across the S × threads execution
/// matrix. The reference run disables the frontier (full root-to-frontier
/// rescan each YES); one reference suffices because shard and thread counts
/// provably never change a trace (tests above).
#[test]
fn frontier_regeneration_selects_identical_sequences() {
    let reference = run_cfg(true, false, TraversalKind::Hybrid, None, 1, 1);
    assert!(reference.questions() > 0, "reference run asked nothing");
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let pooled = run_cfg(true, true, TraversalKind::Hybrid, None, shards, threads);
            assert_equivalent(
                &reference,
                &pooled,
                &format!("frontier S={shards} T={threads}"),
            );
        }
    }
    // The frontier also rides the rescan-benefit ablation unchanged.
    let rescan_ref = run_cfg(false, false, TraversalKind::Hybrid, None, 1, 1);
    let rescan_pooled = run_cfg(false, true, TraversalKind::Hybrid, None, 1, 1);
    assert_equivalent(&rescan_ref, &rescan_pooled, "frontier over rescan benefits");
}

/// Warm-start retraining is pure buffer reuse: a run with
/// `DarwinConfig::warm_start` on must replay the cold-start reference
/// trace (and final scores) bit for bit, across the shards × threads
/// execution matrix.
#[test]
fn warm_start_selects_identical_sequences() {
    let run_warm = |warm: bool, shards: usize, threads: usize| {
        let (d, index) = directions_fixture(800, 42);
        let cfg = DarwinConfig {
            budget: 20,
            n_candidates: 1500,
            warm_start: warm,
            shards,
            threads,
            ..DarwinConfig::fast()
        };
        let darwin = Darwin::new(&d.corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
        darwin.run(seed, &mut oracle)
    };
    let cold = run_warm(false, 1, 1);
    assert!(cold.questions() > 0, "cold reference run asked nothing");
    for shards in [1usize, 4] {
        for threads in [1usize, test_threads().max(2)] {
            let warm = run_warm(true, shards, threads);
            assert_equivalent(&cold, &warm, &format!("warm S={shards} T={threads}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]

    /// The classifier scoring matrix on random corpora: every batched,
    /// sharded, threaded entry point — and warm-started refits — must
    /// reproduce the per-id cold-start scores bit for bit. An empty
    /// sentence is pinned into every corpus (the kernel edge case: its
    /// score is bias-only).
    #[test]
    fn scoring_paths_agree_across_batch_shards_threads(
        texts in corpus_strategy(),
        batch in 1usize..6,
        shards in 1usize..5,
        threads in 1usize..5,
    ) {
        let mut texts = texts;
        texts.push(String::new()); // empty sentence: bias-only score
        let corpus = Corpus::from_texts(texts.iter());
        let n = corpus.len();
        let emb = Embeddings::train(&corpus, &EmbedConfig { dim: 8, seed: 3, ..Default::default() });
        let pos: Vec<u32> = (0..n as u32).step_by(2).collect();
        let neg: Vec<u32> = (1..n as u32).step_by(2).collect();
        let pos2: Vec<u32> = pos.iter().copied().skip(1).collect();

        let fit_rounds = |warm: bool| {
            let cfg = LogRegConfig { warm_start: warm, ..Default::default() };
            let mut clf = LogReg::new(&emb, cfg, 7);
            clf.fit(&corpus, &emb, &pos, &neg);
            if !pos2.is_empty() {
                clf.fit(&corpus, &emb, &pos2, &neg);
            }
            clf
        };
        let cold = fit_rounds(false);
        let warm = fit_rounds(true);

        // Per-id scalar path: the reference every other path must match.
        let reference: Vec<u32> =
            (0..n as u32).map(|id| cold.predict(&corpus, &emb, id).to_bits()).collect();

        // Warm refit ≡ cold refit, per id.
        for id in 0..n as u32 {
            prop_assert_eq!(warm.predict(&corpus, &emb, id).to_bits(), reference[id as usize],
                "warm≠cold at id {}", id);
        }

        // Batched scoring in arbitrary chunk sizes ≡ scalar.
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut batched = Vec::new();
        for chunk in ids.chunks(batch) {
            cold.predict_batch(&corpus, &emb, chunk, &mut batched);
        }
        let batched_bits: Vec<u32> = batched.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(&batched_bits, &reference, "batch={}", batch);

        // Sharded + threaded cache refresh ≡ scalar.
        let mut cache = ScoreCache::full_only(n).with_shards(shards).with_threads(threads);
        cache.refresh(&warm, &corpus, &emb);
        let cache_bits: Vec<u32> = cache.scores().iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(&cache_bits, &reference, "shards={} threads={}", shards, threads);
    }
}

type MakeStrategy = fn() -> Box<dyn darwin_core::Strategy>;

#[test]
fn baseline_selectors_select_identical_sequences() {
    let cases: [(&str, MakeStrategy); 2] =
        [("HighP", || Box::new(HighP)), ("HighC", || Box::new(HighC))];
    for (label, make) in cases {
        let rescan = run_mode(false, TraversalKind::Hybrid, Some(make));
        let incremental = run_mode(true, TraversalKind::Hybrid, Some(make));
        assert_equivalent(&rescan, &incremental, label);
        // The baselines ride the same sharded engine — shard count must
        // not change their traces either.
        let sharded = run_sharded(true, TraversalKind::Hybrid, Some(make), 4);
        assert_equivalent(&rescan, &sharded, &format!("{label} S=4"));
    }
}

#[test]
fn parallel_rounds_select_identical_sequences() {
    let run = |incremental: bool, shards: usize| {
        let (d, index) = directions_fixture(600, 7);
        let cfg = DarwinConfig {
            budget: 20,
            n_candidates: 1200,
            incremental_benefit: incremental,
            shards,
            threads: test_threads(),
            ..DarwinConfig::fast()
        };
        let darwin = Darwin::new(&d.corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut a = GroundTruthOracle::new(&d.labels, 0.8);
        let mut b = GroundTruthOracle::new(&d.labels, 0.8);
        let mut c = GroundTruthOracle::new(&d.labels, 0.8);
        let mut annotators: Vec<&mut dyn Oracle> = vec![&mut a, &mut b, &mut c];
        darwin.run_parallel(seed, &mut annotators, 4)
    };
    let rescan = run(false, 1);
    let incremental = run(true, 1);
    assert_equivalent(&rescan, &incremental, "parallel");
    let sharded = run(true, 4);
    assert_equivalent(&rescan, &sharded, "parallel S=4");
}

/// Drive the engine step by step and verify the delta-maintained aggregates
/// never drift from a from-scratch recomputation mid-run — per shard
/// partition *and* after the merge, at 1 and 4 shards.
#[test]
fn aggregates_stay_consistent_through_a_run() {
    for shards in [1usize, 4] {
        let (d, index) = directions_fixture(500, 11);
        let cfg = DarwinConfig {
            budget: 15,
            n_candidates: 1000,
            shards,
            threads: test_threads(),
            ..DarwinConfig::fast()
        };
        let darwin = Darwin::new(&d.corpus, &index, cfg);
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
        let mut engine = darwin.engine(seed);
        let mut strategy =
            darwin_core::traversal::HybridSearch::new(engine.seed_refs().to_vec(), 5);
        assert!(
            engine.store_is_consistent(),
            "S={shards}: inconsistent before the first question"
        );
        for _ in 0..15 {
            if !engine.step(&mut strategy, &mut oracle) {
                break;
            }
            assert!(
                engine.store_is_consistent(),
                "S={shards}: aggregates drifted after question {}",
                engine.questions()
            );
        }
        assert!(
            engine.questions() > 3,
            "S={shards}: run ended suspiciously early"
        );
    }
}

/// The reusable tree match kernel (`MatchCtx`) now computes every
/// tree-rule coverage the engine sweeps mid-run; this cell proves the
/// kernel replays the scan-based reference byte for byte at the trace
/// level. A full session is run twice (the traces must already be
/// identical), and then every tree rule the trace selected — plus a broad
/// sample of indexed tree rules — has its kernel coverage recomputed and
/// compared against the plain recursive matcher and the index postings.
#[test]
fn match_kernels_replay_reference_trace() {
    let a = run_mode(true, TraversalKind::Hybrid, None);
    let b = run_mode(true, TraversalKind::Hybrid, None);
    assert_equivalent(&a, &b, "match-kernel trace replay");
    assert!(a.questions() > 0, "run asked nothing");

    let (d, index) = directions_fixture(800, 42);
    let mut ctx = darwin::grammar::MatchCtx::new();
    let mut checked = 0usize;
    let traced: Vec<&Heuristic> = a.trace.iter().map(|t| &t.rule).collect();
    let sampled: Vec<Heuristic> = index
        .all_rules()
        .map(|r| index.heuristic(r))
        .filter(|h| matches!(h, Heuristic::Tree(_)))
        .take(300)
        .collect();
    for h in traced.into_iter().chain(sampled.iter()) {
        let Heuristic::Tree(p) = h else { continue };
        let kernel: Vec<u32> = d
            .corpus
            .sentences()
            .iter()
            .filter(|s| ctx.matches(p, s))
            .map(|s| s.id)
            .collect();
        let reference: Vec<u32> = d
            .corpus
            .sentences()
            .iter()
            .filter(|s| p.matches(s))
            .map(|s| s.id)
            .collect();
        assert_eq!(
            kernel,
            reference,
            "kernel vs recursive matcher: {}",
            p.display(d.corpus.vocab())
        );
        if let Some(id) = index.tree_index().and_then(|t| t.lookup(p)) {
            assert_eq!(
                index.tree_index().unwrap().postings(id),
                &kernel[..],
                "kernel vs postings: {}",
                p.display(d.corpus.vocab())
            );
        }
        checked += 1;
    }
    assert!(checked >= 100, "too few tree rules exercised: {checked}");
}

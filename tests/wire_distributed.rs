//! The wire boundary's defining contract: **any transport replays the
//! in-process trace byte for byte.**
//!
//! A distributed deployment — shard partitions in workers (threads over
//! channels, or real child processes over stdio pipes) and the oracle in
//! another worker — is an *execution detail*, exactly like shard and
//! thread counts before it: benefit fragments are integers on the wire,
//! scores cross bit-exactly, and the worker rebuilds an identical index
//! from the same texts, so selection asks the same question sequence.
//!
//! The matrix pinned here (acceptance criterion of the wire PR, extended
//! by the fan-out PR): transport {InProc, Proc, Tcp} × S ∈ {1,2,4} ×
//! threads ∈ {1,4} × batch ∈ {1,8} × fanout {Sequential, Concurrent} —
//! batch 1 against the synchronous local trace, larger batches against
//! the local async run of the same batch size.
//!
//! Fault injection rides the same suite: a dying shard worker poisons the
//! coordinator and aborts the run *cleanly* (`RunResult::wire_error`, no
//! panic, no partial merge), and a dead oracle worker abandons the wave
//! like PR 4's silent-oracle path.
//!
//! `DARWIN_TEST_TRANSPORT` (CI runs `inproc` and `proc`) selects the
//! deployment the env-pinned cell runs with, mirroring
//! `DARWIN_TEST_THREADS`/`DARWIN_TEST_BATCH`.

use darwin::prelude::*;
use darwin_core::AsyncRunResult;
use darwin_testkit::{
    assert_equivalent, directions_fixture, shard_connector, test_batch, test_threads,
    test_transport, wire_oracle, Fault, FlakyTransport, TransportKind,
};
use darwin_wire::{InProc, Transport, WireError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const N: usize = 600;
const DSEED: u64 = 42;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_darwin-worker"))
}

/// The recipe `directions_fixture` builds its index with — the workers
/// must rebuild the identical index, so this must match
/// `darwin_testkit::indexed(corpus, 4)`.
fn index_cfg() -> IndexConfig {
    IndexConfig {
        max_phrase_len: 4,
        min_count: 2,
        ..Default::default()
    }
}

fn cfg(_n: usize, shards: usize, threads: usize, batch: usize) -> DarwinConfig {
    // budget/candidates sized so the ground-truth oracle accepts several
    // rules — every YES drives positive-delta, journal and rebuild
    // messages across the wire, which is the machinery under test.
    DarwinConfig {
        budget: 15,
        n_candidates: 1200,
        shards,
        threads,
        batch: BatchPolicy::Fixed(batch),
        ..DarwinConfig::fast()
    }
}

/// The purely local reference run at the same batch size.
fn run_local(n: usize, shards: usize, threads: usize, batch: usize) -> AsyncRunResult {
    let (d, index) = directions_fixture(n, DSEED);
    let darwin = Darwin::new(&d.corpus, &index, cfg(n, shards, threads, batch));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = Immediate::new(GroundTruthOracle::new(&d.labels, 0.8));
    darwin.run_async(seed, &mut oracle)
}

/// The distributed run: shard workers + an oracle worker over `kind`.
fn run_distributed(
    n: usize,
    kind: TransportKind,
    shards: usize,
    threads: usize,
    batch: usize,
    fanout: Fanout,
) -> AsyncRunResult {
    let (d, index) = directions_fixture(n, DSEED);
    let darwin = Darwin::new(
        &d.corpus,
        &index,
        cfg(n, shards, threads, batch).with_fanout(fanout),
    )
    .with_remote_shards(shard_connector(kind, Some(worker_exe())));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let labels: &'static [bool] = Box::leak(d.labels.clone().into_boxed_slice());
    let exe = worker_exe();
    let args = vec!["--directions".to_string(), n.to_string(), DSEED.to_string()];
    let mut oracle = wire_oracle(
        kind,
        &d.corpus,
        GroundTruthOracle::new(labels, 0.8),
        Some((&exe, &args)),
    )
    .expect("oracle worker connects");
    let out = darwin.run_async(seed, &mut oracle);
    assert!(
        out.run.wire_error.is_none(),
        "healthy deployment must not report a wire error: {:?}",
        out.run.wire_error
    );
    out
}

/// Batch 1: every transport × shard count replays the *synchronous*
/// local trace byte for byte, at the env-configured thread count, with
/// the concurrent fan-out that is the default.
#[test]
fn wire_batch1_replays_synchronous_trace() {
    let threads = test_threads();
    let reference = run_local(N, 1, threads, 1);
    assert!(reference.run.questions() > 5, "reference asked nothing");
    for kind in [
        TransportKind::InProc,
        TransportKind::Proc,
        TransportKind::Tcp,
    ] {
        for shards in [1usize, 2, 4] {
            let done = run_distributed(N, kind, shards, threads, 1, Fanout::Concurrent);
            assert_equivalent(
                &reference.run,
                &done.run,
                &format!("{kind:?} S={shards} T={threads} batch=1"),
            );
        }
    }
}

/// The fan-out knob is a pure latency knob: sequential round trips and
/// the overlapped broadcast replay the identical trace at S = 4.
#[test]
fn sequential_fanout_replays_concurrent_trace() {
    let reference = run_local(N, 1, 1, 1);
    for fanout in [Fanout::Sequential, Fanout::Concurrent] {
        let done = run_distributed(N, TransportKind::InProc, 4, 1, 1, fanout);
        assert_equivalent(&reference.run, &done.run, &format!("{fanout:?} S=4"));
    }
}

/// Batch 8: the wire deployment replays the local *async* run of the same
/// batch size exactly (same wave fills, same arrivals-at-next-poll
/// schedule on both sides).
#[test]
fn wire_batch8_replays_local_async_run() {
    let threads = test_threads();
    let reference = run_local(N, 1, threads, 8);
    for kind in [
        TransportKind::InProc,
        TransportKind::Proc,
        TransportKind::Tcp,
    ] {
        let done = run_distributed(N, kind, 2, threads, 8, Fanout::Concurrent);
        assert_equivalent(
            &reference.run,
            &done.run,
            &format!("{kind:?} S=2 T={threads} batch=8"),
        );
    }
}

/// The env-pinned cell of the CI matrix: DARWIN_TEST_TRANSPORT ×
/// DARWIN_TEST_THREADS × DARWIN_TEST_BATCH, S = 2.
#[test]
fn wire_env_cell_matches_local() {
    let (kind, threads, batch) = (test_transport(), test_threads(), test_batch());
    let reference = run_local(N, 1, threads, batch);
    let done = run_distributed(N, kind, 2, threads, batch, Fanout::Concurrent);
    assert_equivalent(
        &reference.run,
        &done.run,
        &format!("env cell {kind:?} T={threads} B={batch}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..Default::default() })]

    /// The full acceptance matrix, sampled: transport × S ∈ {1,2,4} ×
    /// threads ∈ {1,4} × batch ∈ {1,8} × fanout reproduces the
    /// in-process S=1 run of the same batch size (which batch_async.rs
    /// pins to the synchronous trace at batch 1).
    #[test]
    fn wire_matrix_replays_inprocess_trace(
        kind in prop::sample::select(vec![
            TransportKind::InProc,
            TransportKind::Proc,
            TransportKind::Tcp,
        ]),
        shards in prop::sample::select(vec![1usize, 2, 4]),
        threads in prop::sample::select(vec![1usize, 4]),
        batch in prop::sample::select(vec![1usize, 8]),
        sequential in prop::bool::ANY,
    ) {
        let fanout = if sequential { Fanout::Sequential } else { Fanout::Concurrent };
        let reference = run_local(300, 1, threads, batch);
        let done = run_distributed(300, kind, shards, threads, batch, fanout);
        assert_equivalent(
            &reference.run,
            &done.run,
            &format!("{kind:?} S={shards} T={threads} B={batch} {fanout:?}"),
        );
    }
}

/// A healthy distributed engine keeps its fragment mirrors *exact*: the
/// audit fetches every fragment back from the workers and compares.
#[test]
fn remote_mirrors_audit_exact_after_stepping() {
    let (d, index) = directions_fixture(N, DSEED);
    let darwin = Darwin::new(&d.corpus, &index, cfg(N, 3, 1, 1))
        .with_remote_shards(shard_connector(TransportKind::InProc, None));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut engine = darwin.engine(seed);
    let mut strategy = darwin_core::traversal::UniversalSearch::new();
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    for _ in 0..6 {
        if !engine.step(&mut strategy, &mut oracle) {
            break;
        }
        assert!(engine.audit_remote_store().unwrap(), "mirror drifted");
    }
    assert!(engine.wire_error().is_none());
    assert!(engine.store_is_consistent());
}

/// A shard worker that dies mid-run *and cannot be restarted*: the run
/// aborts *cleanly* — the reconnect attempt fails, the error surfaces in
/// `RunResult::wire_error`, the applied prefix stays coherent, and
/// nothing panics. (When restart succeeds, the run recovers instead —
/// see `flaky_shard_worker_reconnects_and_replays`.)
#[test]
fn dying_shard_worker_aborts_cleanly() {
    let (d, index) = directions_fixture(N, DSEED);
    // Let the handshake, init and first hierarchy tracking through
    // (hello, init, retain, track_scored — 4 sends), then the transport
    // to shard 0 starts dropping everything: the first YES's store
    // update is the first casualty. Re-dials are refused, so
    // reconnect-and-replay cannot save the run.
    let dials = Arc::new(AtomicUsize::new(0));
    let dials_in = dials.clone();
    let connect: Box<darwin_core::ShardConnector> = Box::new(move |s, _range| {
        if s == 0 && dials_in.fetch_add(1, Ordering::SeqCst) > 0 {
            return Err(WireError::Disconnected);
        }
        let (client, mut server) = InProc::pair();
        std::thread::spawn(move || {
            let _ = darwin_core::serve_shard(&mut server);
        });
        let t: Box<dyn Transport> = if s == 0 {
            Box::new(FlakyTransport::after(Box::new(client), Fault::Drop, 4))
        } else {
            Box::new(client)
        };
        Ok(t)
    });
    let darwin = Darwin::new(&d.corpus, &index, cfg(N, 2, 1, 1)).with_remote_shards(connect);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    let run = darwin.run(seed, &mut oracle);
    let err = run
        .wire_error
        .as_deref()
        .expect("wire failure must surface");
    assert!(!err.is_empty());
    assert!(
        dials.load(Ordering::SeqCst) > 1,
        "the coordinator must have attempted a restart before giving up"
    );
    // The prefix is coherent: every trace step's P growth is consistent.
    let mut prev = run.p_size_after(0);
    for step in &run.trace {
        assert!(step.p_size >= prev);
        prev = step.p_size;
    }
}

/// A shard worker that keeps dying but *can* be restarted: the
/// coordinator re-dials, re-initializes the fresh worker from its
/// confirmed mirrors, replays the interrupted request, and the run
/// completes with no wire error — byte-identical to the healthy trace.
#[test]
fn flaky_shard_worker_reconnects_and_replays() {
    let (d, index) = directions_fixture(N, DSEED);
    let reference = {
        let darwin = Darwin::new(&d.corpus, &index, cfg(N, 2, 1, 1));
        let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
        let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
        darwin.run(seed, &mut oracle)
    };
    // Every incarnation of shard 0's worker survives only 6 sends past
    // the dial (enough for the hello + re-init + replay cycle, plus a
    // little progress) before its transport starts dropping frames — a
    // worker that crashes over and over but is always restartable.
    let dials = Arc::new(AtomicUsize::new(0));
    let dials_in = dials.clone();
    let connect: Box<darwin_core::ShardConnector> = Box::new(move |s, _range| {
        let (client, mut server) = InProc::pair();
        std::thread::spawn(move || {
            let _ = darwin_core::serve_shard(&mut server);
        });
        let t: Box<dyn Transport> = if s == 0 {
            dials_in.fetch_add(1, Ordering::SeqCst);
            Box::new(FlakyTransport::after(Box::new(client), Fault::Drop, 6))
        } else {
            Box::new(client)
        };
        Ok(t)
    });
    let darwin = Darwin::new(&d.corpus, &index, cfg(N, 2, 1, 1)).with_remote_shards(connect);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    let run = darwin.run(seed, &mut oracle);
    assert!(
        run.wire_error.is_none(),
        "reconnect-and-replay must absorb the failures: {:?}",
        run.wire_error
    );
    assert!(
        dials.load(Ordering::SeqCst) > 1,
        "shard 0 must actually have been restarted"
    );
    assert_equivalent(&reference, &run, "flaky-but-restartable shard 0");
}

/// Frame corruption (torn writes) is caught before it can poison state:
/// the coordinator's first exchange over a truncating transport fails
/// with a clean codec/protocol error — connect refuses, no store exists,
/// nothing panics.
#[test]
fn truncating_transport_refuses_cleanly() {
    let (d, index) = directions_fixture(200, DSEED);
    let connect: Box<darwin_core::ShardConnector> = Box::new(|_s, _range| {
        let (client, mut server) = InProc::pair();
        std::thread::spawn(move || {
            let _ = darwin_core::serve_shard(&mut server);
        });
        Ok(
            Box::new(FlakyTransport::always(Box::new(client), Fault::Truncate))
                as Box<dyn Transport>,
        )
    });
    let darwin = Darwin::new(&d.corpus, &index, cfg(200, 2, 1, 1)).with_remote_shards(connect);
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    let run = darwin.run(seed, &mut oracle);
    assert!(run.wire_error.is_some(), "truncation must surface");
    assert!(
        run.trace.is_empty(),
        "no questions may be asked without a benefit store"
    );
}

/// Remote shards have no distributed form of the rescan ablation: a
/// run configured with `incremental_benefit: false` refuses loudly
/// instead of silently running in-process with no workers.
#[test]
fn remote_without_incremental_benefit_refuses() {
    let (d, index) = directions_fixture(200, DSEED);
    let mut c = cfg(200, 2, 1, 1);
    c.incremental_benefit = false;
    let darwin = Darwin::new(&d.corpus, &index, c)
        .with_remote_shards(shard_connector(TransportKind::InProc, None));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let mut oracle = GroundTruthOracle::new(&d.labels, 0.8);
    let run = darwin.run(seed, &mut oracle);
    let err = run.wire_error.as_deref().expect("must refuse");
    assert!(err.contains("incremental_benefit"), "got {err}");
    assert!(run.trace.is_empty(), "no questions without a store");
}

/// A dead oracle worker abandons the wave like PR 4's silent-oracle
/// path: the driver notices the oracle is unhealthy, keeps every answer
/// already applied, and returns the partial run promptly.
#[test]
fn dead_oracle_worker_abandons_the_wave() {
    let (d, index) = directions_fixture(N, DSEED);
    let darwin = Darwin::new(&d.corpus, &index, cfg(N, 1, 1, 4));
    let seed = Seed::Rule(Heuristic::phrase(&d.corpus, d.seed_rules[0]).unwrap());
    let labels: &'static [bool] = Box::leak(d.labels.clone().into_boxed_slice());
    // Build the oracle over a transport that survives the handshake
    // (2 sends: Hello + first Submit) and then drops everything.
    let corpus = d.corpus.clone();
    let (client, mut server) = InProc::pair();
    std::thread::spawn(move || {
        let mut gt = GroundTruthOracle::new(labels, 0.8);
        let _ = darwin_core::serve_oracle(&mut server, &corpus, &mut gt);
    });
    let flaky = FlakyTransport::after(Box::new(client), Fault::Drop, 2);
    let mut oracle = darwin_core::WireOracle::connect(Box::new(flaky)).unwrap();
    let out = darwin.run_async(seed, &mut oracle);
    assert!(out.report.abandoned > 0, "wave must be abandoned");
    assert!(oracle.last_error().is_some());
    assert_eq!(
        out.report.submitted,
        out.run.questions() + out.report.abandoned,
        "abandoned questions are spent but unanswered"
    );
}

/// The duplicated-frame fault: a retransmitted reply desynchronizes the
/// strict request/response protocol, which the coordinator detects as a
/// clean protocol error — never a silently-partial merge.
#[test]
fn duplicated_frames_surface_as_protocol_error() {
    let (d, _index) = directions_fixture(200, DSEED);
    let (client, mut server) = InProc::pair();
    std::thread::spawn(move || {
        let _ = darwin_core::serve_shard(&mut server);
    });
    // Duplicate every outgoing frame: the worker answers each copy, so
    // the client reads stale replies from then on.
    let flaky = FlakyTransport::after(Box::new(client), Fault::Duplicate, 2);
    let p = darwin_index::IdSet::from_ids(&[0], d.corpus.len());
    let scores = vec![0.5f32; d.corpus.len()];
    let mut remote = darwin_core::RemoteShard::connect(
        Box::new(flaky),
        &d.corpus,
        &index_cfg(),
        0,
        d.corpus.len() as u32,
        &p,
        &scores,
    )
    .expect("handshake + init survive the grace window");
    // The duplicated request is answered twice by the worker. The first
    // reply matches this exchange's sequence number and is applied...
    remote
        .on_positives_added(&[1])
        .expect("first reply matches its sequence");
    // ...but the duplicate's reply is still queued, and the *next*
    // exchange reads it: the sequence check refuses the stale frame as a
    // clean protocol error instead of folding it into the wrong request.
    let err = remote.on_positives_added(&[2]).unwrap_err();
    assert!(
        matches!(err, WireError::Protocol(_) | WireError::Remote(_)),
        "desync must be a protocol-shaped error, got {err:?}"
    );
}
